// Concurrency contract of the serving layer: N threads hammering one
// shared ServingModel — lazy preparation racing included — produce
// results bit-identical to a serial run, and per-thread RequestContext
// reuse changes speed, never answers. Run under TSan in CI.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "core/engine_builder.h"
#include "datagen/dblp_gen.h"
#include "eval/experiment.h"
#include "test_fixtures.h"

namespace kqr {
namespace {

// Small corpus so the test stays quick under ThreadSanitizer.
DblpOptions SmallCorpus() {
  DblpOptions options;
  options.num_authors = 80;
  options.num_papers = 260;
  options.num_venues = 8;
  options.seed = 7;
  return options;
}

struct Workload {
  ExperimentContext ctx;
  std::vector<std::vector<TermId>> queries;
};

Workload MakeWorkload(EngineOptions engine = {}) {
  Workload w;
  auto ctx = MakeDblpContext(SmallCorpus(), engine);
  KQR_CHECK(ctx.ok()) << ctx.status().ToString();
  w.ctx = std::move(*ctx);
  QuerySampler sampler(*w.ctx.model, /*seed=*/99);
  for (size_t len : {2, 3}) {
    for (auto& q : sampler.SampleQueries(8, len)) {
      w.queries.push_back(std::move(q));
    }
  }
  return w;
}

/// Unwraps a reformulation Result; the fixed workloads here must all
/// serve, so any error is a test bug worth dying on (thread-safe, unlike
/// ASSERT_*, so it can run inside worker threads).
std::vector<ReformulatedQuery> Unwrap(
    Result<std::vector<ReformulatedQuery>> result) {
  KQR_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).ValueUnsafe();
}

bool SameRanking(const std::vector<ReformulatedQuery>& a,
                 const std::vector<ReformulatedQuery>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].terms != b[i].terms) return false;
    // Bit-identical, not approximately equal: concurrency must not
    // perturb any floating-point path.
    if (std::memcmp(&a[i].score, &b[i].score, sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

// M threads × all queries against one shared lazy model must reproduce a
// serial run exactly, even though the threads race to prepare terms.
TEST(ServingConcurrency, ThreadedMatchesSerialBitExact) {
  constexpr size_t kThreads = 8;
  constexpr size_t kTopK = 5;

  // Serial reference from its own fresh model (so the threaded model's
  // preparation order can't leak into the reference).
  Workload serial = MakeWorkload();
  std::vector<std::vector<ReformulatedQuery>> reference;
  for (const auto& q : serial.queries) {
    reference.push_back(Unwrap(serial.ctx.model->ReformulateTerms(q, kTopK)));
  }

  Workload threaded = MakeWorkload();
  ASSERT_EQ(threaded.queries.size(), serial.queries.size());
  const ServingModel& model = *threaded.ctx.model;
  // Pre-prepare a subset so some lazy lookups hit and others race.
  for (size_t i = 0; i < threaded.queries.size(); i += 3) {
    model.EnsureTerm(threaded.queries[i][0]);
  }

  std::atomic<size_t> divergent{0};
  std::vector<std::thread> threads;
  for (size_t w = 0; w < kThreads; ++w) {
    threads.emplace_back([&]() {
      RequestContext ctx;
      for (size_t i = 0; i < threaded.queries.size(); ++i) {
        auto ranking = Unwrap(
            model.ReformulateTerms(threaded.queries[i], kTopK, &ctx));
        if (!SameRanking(ranking, reference[i])) {
          divergent.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(divergent.load(), 0u);
}

// Same contract for an eager (frozen, lock-free) model.
TEST(ServingConcurrency, EagerModelThreadedMatchesSerial) {
  constexpr size_t kThreads = 4;
  constexpr size_t kTopK = 5;
  EngineOptions eager;
  eager.precompute_offline = true;
  Workload w = MakeWorkload(eager);
  const ServingModel& model = *w.ctx.model;
  ASSERT_TRUE(model.fully_prepared());

  std::vector<std::vector<ReformulatedQuery>> reference;
  for (const auto& q : w.queries) {
    reference.push_back(Unwrap(model.ReformulateTerms(q, kTopK)));
  }

  std::atomic<size_t> divergent{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      RequestContext ctx;
      for (size_t i = 0; i < w.queries.size(); ++i) {
        if (!SameRanking(
                Unwrap(model.ReformulateTerms(w.queries[i], kTopK, &ctx)),
                reference[i])) {
          divergent.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(divergent.load(), 0u);
}

// Concurrent EnsureTerm on the same terms: exactly one caller prepares
// each term, and the resulting index state matches serial preparation.
TEST(ServingConcurrency, EnsureTermRaceIsIdempotent) {
  constexpr size_t kThreads = 8;
  Workload w = MakeWorkload();
  const ServingModel& model = *w.ctx.model;
  std::vector<TermId> terms;
  for (const auto& q : w.queries) {
    terms.insert(terms.end(), q.begin(), q.end());
  }

  // Debug builds audit the model at build time, which pre-prepares a few
  // probe terms; those cannot be won by any racing caller.
  const std::vector<TermId> baseline = model.PreparedTerms();

  std::atomic<size_t> prepared{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      for (TermId term : terms) {
        if (model.EnsureTerm(term)) {
          prepared.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  std::vector<TermId> unique = terms;
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
  size_t expected = 0;
  for (TermId term : unique) {
    if (!std::binary_search(baseline.begin(), baseline.end(), term)) {
      ++expected;
    }
  }
  // Every distinct unprepared term was prepared by exactly one winner.
  EXPECT_EQ(prepared.load(), expected);
  for (TermId term : unique) {
    EXPECT_FALSE(model.EnsureTerm(term));
  }
}

// A reused RequestContext serves warm (scratch hits) with answers
// bit-identical to cold contexts.
TEST(ServingConcurrency, WarmContextMatchesColdBitExact) {
  constexpr size_t kTopK = 5;
  Workload w = MakeWorkload();
  const ServingModel& model = *w.ctx.model;

  RequestContext warm;
  std::vector<std::vector<ReformulatedQuery>> first_pass;
  for (const auto& q : w.queries) {
    first_pass.push_back(Unwrap(model.ReformulateTerms(q, kTopK, &warm)));
  }
  EXPECT_EQ(warm.stats.requests, w.queries.size());

  size_t misses_after_first = warm.stats.scratch_misses;
  for (size_t i = 0; i < w.queries.size(); ++i) {
    // Second pass: warm scratch vs a cold per-request context vs no
    // context at all — identical rankings.
    auto warm_ranking =
        Unwrap(model.ReformulateTerms(w.queries[i], kTopK, &warm));
    RequestContext cold;
    auto cold_ranking =
        Unwrap(model.ReformulateTerms(w.queries[i], kTopK, &cold));
    auto no_ctx_ranking = Unwrap(model.ReformulateTerms(w.queries[i], kTopK));
    EXPECT_TRUE(SameRanking(warm_ranking, first_pass[i])) << "query " << i;
    EXPECT_TRUE(SameRanking(cold_ranking, first_pass[i])) << "query " << i;
    EXPECT_TRUE(SameRanking(no_ctx_ranking, first_pass[i]))
        << "query " << i;
  }
  EXPECT_EQ(warm.stats.requests, 2 * w.queries.size());
  EXPECT_GT(warm.stats.scratch_hits, 0u);
  // The warm second pass over the same queries adds no capacity misses.
  EXPECT_EQ(warm.stats.scratch_misses, misses_after_first);
  EXPECT_GT(warm.stats.ScratchHitRate(), 0.0);
}

// ReformulateTermsWith under the model's own options must equal
// ReformulateTerms, concurrently.
TEST(ServingConcurrency, WithOptionsMatchesBuiltInConcurrently) {
  constexpr size_t kThreads = 4;
  constexpr size_t kTopK = 5;
  Workload w = MakeWorkload();
  const ServingModel& model = *w.ctx.model;
  const ReformulatorOptions opts = model.options().reformulator;

  std::vector<std::vector<ReformulatedQuery>> reference;
  for (const auto& q : w.queries) {
    reference.push_back(Unwrap(model.ReformulateTerms(q, kTopK)));
  }

  std::atomic<size_t> divergent{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      RequestContext ctx;
      for (size_t i = 0; i < w.queries.size(); ++i) {
        auto ranking = Unwrap(
            model.ReformulateTermsWith(opts, w.queries[i], kTopK, &ctx));
        if (!SameRanking(ranking, reference[i])) {
          divergent.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(divergent.load(), 0u);
}

// Micro-fixture smoke: concurrent mixed traffic (reformulate + search +
// count) on a tiny lazy model.
TEST(ServingConcurrency, MixedTrafficOnMicroCorpus) {
  auto built = EngineBuilder().Build(testing_fixtures::MakeMicroDblp());
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  std::shared_ptr<const ServingModel> model = std::move(*built);
  auto terms = model->ResolveQuery("uncertain query");
  ASSERT_TRUE(terms.ok());

  auto serial = Unwrap(model->ReformulateTerms(*terms, 5));
  std::atomic<size_t> divergent{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < 6; ++t) {
    threads.emplace_back([&, t]() {
      RequestContext ctx;
      for (int round = 0; round < 20; ++round) {
        if (t % 3 == 0) {
          auto outcome = model->Search("uncertain query");
          if (!outcome.ok() || outcome->total_results == 0) {
            divergent.fetch_add(1, std::memory_order_relaxed);
          }
        } else if (t % 3 == 1) {
          if (model->CountResults(*terms) == 0) {
            divergent.fetch_add(1, std::memory_order_relaxed);
          }
        } else if (!SameRanking(
                       Unwrap(model->ReformulateTerms(*terms, 5, &ctx)),
                       serial)) {
          divergent.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(divergent.load(), 0u);
}

}  // namespace
}  // namespace kqr
