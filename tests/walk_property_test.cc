// Property tests of the random-walk engine over randomized graphs:
// invariants that must hold for any topology.

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"
#include "graph/csr.h"
#include "graph/tat_graph.h"
#include "walk/random_walk.h"

namespace kqr {
namespace {

// Random connected-ish undirected graph wrapped in a TatGraph shell
// (all nodes "tuples" of a single fake table; fine for walk mechanics).
struct RandomWorld {
  Database db{"walkprop"};
  Vocabulary vocab;
  std::unique_ptr<TatGraph> graph;
};

std::unique_ptr<TatGraph> MakeRandomGraph(size_t n, size_t extra_edges,
                                          uint64_t seed,
                                          const Vocabulary* vocab,
                                          const Database* db) {
  Rng rng(seed);
  std::vector<std::tuple<uint32_t, uint32_t, float>> edges;
  // Random spanning tree first so everything connects.
  for (uint32_t v = 1; v < n; ++v) {
    uint32_t u = static_cast<uint32_t>(rng.NextBounded(v));
    edges.emplace_back(u, v, 1.0f + float(rng.NextDouble()));
  }
  for (size_t e = 0; e < extra_edges; ++e) {
    uint32_t u = static_cast<uint32_t>(rng.NextBounded(n));
    uint32_t v = static_cast<uint32_t>(rng.NextBounded(n));
    if (u == v) continue;
    edges.emplace_back(u, v, 1.0f + float(rng.NextDouble()));
  }
  NodeSpace space({n}, 0);
  CsrGraph adjacency = CsrGraph::FromUndirectedEdges(n, std::move(edges));
  return std::make_unique<TatGraph>(std::move(space),
                                    std::move(adjacency), vocab, db);
}

class WalkProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  WalkProperty() {
    graph_ = MakeRandomGraph(60, 90, GetParam(), &world_.vocab,
                             &world_.db);
  }
  RandomWorld world_;
  std::unique_ptr<TatGraph> graph_;
};

TEST_P(WalkProperty, MassConserved) {
  RandomWalkEngine engine(*graph_);
  PreferenceVector r = MakeBasicPreference(
      static_cast<NodeId>(GetParam() % graph_->num_nodes()));
  RandomWalkResult result = engine.Run(r);
  double total = std::accumulate(result.scores.begin(),
                                 result.scores.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-6);
  for (double s : result.scores) EXPECT_GE(s, 0.0);
}

TEST_P(WalkProperty, MassConservedOnUnnormalizedPreference) {
  // Run normalizes defensively, so any random non-negative preference —
  // including ones with out-of-range and non-positive entries mixed in —
  // must still yield a probability distribution.
  Rng rng(GetParam() * 7919 + 1);
  PreferenceVector r;
  const size_t n = graph_->num_nodes();
  for (size_t e = 0; e < 12; ++e) {
    r.entries.emplace_back(static_cast<NodeId>(rng.NextBounded(n)),
                           rng.NextDouble() * 10.0);
  }
  r.entries.emplace_back(static_cast<NodeId>(n + rng.NextBounded(50)), 3.0);
  r.entries.emplace_back(static_cast<NodeId>(rng.NextBounded(n)), -1.0);

  RandomWalkEngine engine(*graph_);
  RandomWalkResult result = engine.Run(r);
  double total = std::accumulate(result.scores.begin(),
                                 result.scores.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-6);
  for (double s : result.scores) EXPECT_GE(s, 0.0);
}

TEST_P(WalkProperty, Converges) {
  RandomWalkEngine engine(*graph_);
  PreferenceVector r = MakeBasicPreference(0);
  EXPECT_TRUE(engine.Run(r).converged);
}

TEST_P(WalkProperty, SplitPreferenceIsConvexCombination) {
  // Linearity of PPR: p(½r_a + ½r_b) = ½p(r_a) + ½p(r_b).
  NodeId a = static_cast<NodeId>(GetParam() % graph_->num_nodes());
  NodeId b = static_cast<NodeId>((GetParam() / 3 + 17) %
                                 graph_->num_nodes());
  if (a == b) b = (b + 1) % graph_->num_nodes();

  RandomWalkOptions tight;
  tight.epsilon = 1e-12;
  tight.max_iterations = 400;
  RandomWalkEngine engine(*graph_, tight);

  PreferenceVector ra = MakeBasicPreference(a);
  PreferenceVector rb = MakeBasicPreference(b);
  PreferenceVector mix;
  mix.entries = {{a, 0.5}, {b, 0.5}};

  auto pa = engine.Run(ra).scores;
  auto pb = engine.Run(rb).scores;
  auto pm = engine.Run(mix).scores;
  for (size_t v = 0; v < pm.size(); ++v) {
    EXPECT_NEAR(pm[v], 0.5 * pa[v] + 0.5 * pb[v], 1e-8) << "node " << v;
  }
}

TEST_P(WalkProperty, HigherDampingSpreadsMass) {
  // With larger λ less mass stays at the restart node.
  NodeId start = static_cast<NodeId>(GetParam() % graph_->num_nodes());
  PreferenceVector r = MakeBasicPreference(start);
  double previous = 1.1;
  for (double damping : {0.3, 0.6, 0.9}) {
    RandomWalkOptions options;
    options.damping = damping;
    options.epsilon = 1e-10;
    options.max_iterations = 500;
    RandomWalkEngine engine(*graph_, options);
    double at_start = engine.Run(r).scores[start];
    EXPECT_LT(at_start, previous);
    previous = at_start;
  }
}

TEST_P(WalkProperty, DeterministicAcrossRuns) {
  RandomWalkEngine engine(*graph_);
  PreferenceVector r = MakeBasicPreference(3 % graph_->num_nodes());
  auto a = engine.Run(r).scores;
  auto b = engine.Run(r).scores;
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalkProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace kqr
