#include "datagen/topic_model.h"

#include <gtest/gtest.h>

#include <set>

namespace kqr {
namespace {

TEST(TopicModel, StandardHasPaperCaseStudyTerms) {
  TopicModel tm = TopicModel::Standard();
  EXPECT_GE(tm.num_topics(), 10u);
  // The case-study words of Tables I/II must exist.
  EXPECT_FALSE(tm.TopicsOfWord("xml").empty());
  EXPECT_FALSE(tm.TopicsOfWord("probabilistic").empty());
  EXPECT_FALSE(tm.TopicsOfWord("uncertain").empty());
  EXPECT_FALSE(tm.TopicsOfWord("association").empty());
}

TEST(TopicModel, QuasiSynonymsShareTopic) {
  TopicModel tm = TopicModel::Standard();
  auto prob = tm.TopicsOfWord("probabilistic");
  auto unc = tm.TopicsOfWord("uncertain");
  ASSERT_FALSE(prob.empty());
  EXPECT_EQ(prob, unc);
  auto xml = tm.TopicsOfWord("xml");
  auto semi = tm.TopicsOfWord("semistructured");
  EXPECT_EQ(xml, semi);
}

TEST(TopicModel, UnknownWordHasNoTopics) {
  TopicModel tm = TopicModel::Standard();
  EXPECT_TRUE(tm.TopicsOfWord("zeppelin").empty());
  EXPECT_TRUE(tm.TopicsOfStem("zeppelin").empty());
}

TEST(TopicModel, StemLookupMatchesInflections) {
  TopicModel tm = TopicModel::Standard();
  PorterStemmer stemmer;
  // "mining" is in the datamining topic; its stem resolves there too.
  auto direct = tm.TopicsOfWord("mining");
  auto via_stem = tm.TopicsOfStem(stemmer.Stem("mining"));
  ASSERT_FALSE(direct.empty());
  for (size_t t : direct) {
    EXPECT_NE(std::find(via_stem.begin(), via_stem.end(), t),
              via_stem.end());
  }
}

TEST(TopicModel, SharedWordsBelongToMultipleTopics) {
  TopicModel tm = TopicModel::Standard();
  // "ranking" appears in databases, uncertainty and retrieval lists.
  auto topics = tm.TopicsOfWord("ranking");
  EXPECT_GE(topics.size(), 2u);
}

TEST(TopicModel, SampleTermStaysInTopic) {
  TopicModel tm = TopicModel::Standard();
  Rng rng(5);
  for (size_t t = 0; t < tm.num_topics(); ++t) {
    for (int i = 0; i < 50; ++i) {
      const std::string& w = tm.SampleTerm(t, &rng);
      auto topics = tm.TopicsOfWord(w);
      EXPECT_NE(std::find(topics.begin(), topics.end(), t), topics.end())
          << w << " not in topic " << t;
    }
  }
}

TEST(TopicModel, SampleTermSkewedTowardHead) {
  TopicModel tm = TopicModel::Standard();
  Rng rng(7);
  const std::string& head = tm.topic(0).terms[0];
  int head_count = 0;
  const int draws = 2000;
  for (int i = 0; i < draws; ++i) {
    if (tm.SampleTerm(0, &rng) == head) ++head_count;
  }
  // Zipf s=1 over ~28 terms gives the head ~25%; uniform would be ~3.6%.
  EXPECT_GT(head_count, draws / 10);
}

TEST(TopicModel, SubtopicSamplingRespectsPartition) {
  TopicModel tm = TopicModel::Standard();
  Rng rng(11);
  const size_t kSubtopics = 3;
  for (size_t sub = 0; sub < kSubtopics; ++sub) {
    for (int i = 0; i < 30; ++i) {
      const std::string& w =
          tm.SampleTermInSubtopic(0, sub, kSubtopics, &rng);
      // Find the word's index in topic 0 and check its partition.
      const auto& terms = tm.topic(0).terms;
      auto it = std::find(terms.begin(), terms.end(), w);
      ASSERT_NE(it, terms.end());
      size_t index = static_cast<size_t>(it - terms.begin());
      EXPECT_EQ(TopicModel::SubtopicOfIndex(index, kSubtopics), sub);
    }
  }
}

TEST(TopicModel, SubtopicOneFallsBackToWholeTopic) {
  TopicModel tm = TopicModel::Standard();
  Rng rng(13);
  const std::string& w = tm.SampleTermInSubtopic(1, 0, 1, &rng);
  EXPECT_FALSE(tm.TopicsOfWord(w).empty());
}

TEST(TopicModel, SyntheticShapes) {
  TopicModel tm = TopicModel::Synthetic(5, 12);
  EXPECT_EQ(tm.num_topics(), 5u);
  for (size_t t = 0; t < 5; ++t) {
    EXPECT_EQ(tm.topic(t).terms.size(), 12u);
  }
  // Words are distinct across topics.
  std::set<std::string> all;
  for (size_t t = 0; t < 5; ++t) {
    for (const auto& w : tm.topic(t).terms) {
      EXPECT_TRUE(all.insert(w).second) << "duplicate " << w;
    }
  }
  EXPECT_EQ(tm.TopicsOfWord("zq0w0"), std::vector<size_t>{0});
}

TEST(TopicModel, RetailDomainsExist) {
  TopicModel tm = TopicModel::Retail();
  EXPECT_GE(tm.num_topics(), 4u);
  EXPECT_FALSE(tm.TopicsOfWord("bluetooth").empty());
}

}  // namespace
}  // namespace kqr
