#include "core/facets.h"

#include <gtest/gtest.h>

#include "core/engine_builder.h"
#include "test_fixtures.h"

namespace kqr {
namespace {

class FacetsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto engine =
        EngineBuilder().Build(testing_fixtures::MakeMicroDblp());
    KQR_CHECK(engine.ok());
    engine_ = std::move(*engine);
  }
  static void TearDownTestSuite() {
    engine_.reset();
  }

  ReformulatedQuery MakeQuery(std::vector<TermId> terms,
                              bool identity = false) {
    ReformulatedQuery q;
    q.terms = std::move(terms);
    q.is_identity = identity;
    q.score = 0.5;
    return q;
  }

  static std::shared_ptr<const ServingModel> engine_;
};

std::shared_ptr<const ServingModel> FacetsTest::engine_;

TEST_F(FacetsTest, GroupsBySubstitutedField) {
  const Vocabulary& vocab = engine_->vocab();
  auto title = vocab.FindField("papers", "title");
  ASSERT_TRUE(title.has_value());
  PorterStemmer st;
  TermId uncertain = *vocab.Find(*title, st.Stem("uncertain"));
  TermId query = *vocab.Find(*title, st.Stem("query"));
  TermId probabilistic = *vocab.Find(*title, st.Stem("probabilistic"));
  TermId mining = *vocab.Find(*title, st.Stem("mining"));

  std::vector<TermId> original = {uncertain, query};
  std::vector<ReformulatedQuery> ranking;
  ranking.push_back(MakeQuery({probabilistic, query}));  // title change
  ranking.push_back(MakeQuery({uncertain, mining}));     // title change
  ranking.push_back(MakeQuery({uncertain, query}, /*identity=*/true));
  ranking.push_back(MakeQuery({uncertain, kInvalidTermId}));  // deletion

  auto facets = GroupByFacets(original, ranking, vocab);
  ASSERT_EQ(facets.size(), 2u);
  EXPECT_EQ(facets[0].label, "papers.title");
  EXPECT_EQ(facets[0].suggestions.size(), 2u);
  EXPECT_EQ(facets[1].label, "deletions");
  EXPECT_EQ(facets[1].suggestions.size(), 1u);
}

TEST_F(FacetsTest, MultiFieldFacetLabeled) {
  const Vocabulary& vocab = engine_->vocab();
  auto title = vocab.FindField("papers", "title");
  auto author = vocab.FindField("authors", "name");
  ASSERT_TRUE(title.has_value() && author.has_value());
  PorterStemmer st;
  TermId uncertain = *vocab.Find(*title, st.Stem("uncertain"));
  TermId mining = *vocab.Find(*title, st.Stem("mining"));
  TermId alice = *vocab.Find(*author, "alice smith");
  TermId carol = *vocab.Find(*author, "carol wu");

  std::vector<TermId> original = {alice, uncertain};
  std::vector<ReformulatedQuery> ranking;
  ranking.push_back(MakeQuery({carol, mining}));

  auto facets = GroupByFacets(original, ranking, vocab);
  ASSERT_EQ(facets.size(), 1u);
  EXPECT_NE(facets[0].label.find("authors.name"), std::string::npos);
  EXPECT_NE(facets[0].label.find("papers.title"), std::string::npos);
  EXPECT_EQ(facets[0].fields.size(), 2u);
}

TEST_F(FacetsTest, GroupsOrderedByBestSuggestion) {
  const Vocabulary& vocab = engine_->vocab();
  auto title = vocab.FindField("papers", "title");
  PorterStemmer st;
  TermId uncertain = *vocab.Find(*title, st.Stem("uncertain"));
  TermId query = *vocab.Find(*title, st.Stem("query"));
  TermId mining = *vocab.Find(*title, st.Stem("mining"));

  std::vector<TermId> original = {uncertain, query};
  std::vector<ReformulatedQuery> ranking;
  ranking.push_back(MakeQuery({uncertain, kInvalidTermId}));  // deletions
  ranking.push_back(MakeQuery({mining, query}));              // title

  auto facets = GroupByFacets(original, ranking, vocab);
  ASSERT_EQ(facets.size(), 2u);
  EXPECT_EQ(facets[0].label, "deletions");  // rank-0 suggestion first
}

TEST_F(FacetsTest, EmptyRanking) {
  EXPECT_TRUE(GroupByFacets({1, 2}, {}, engine_->vocab()).empty());
}

TEST_F(FacetsTest, ExplainMarksKeptDroppedAndSubstituted) {
  auto terms = engine_->ResolveQuery("uncertain query");
  ASSERT_TRUE(terms.ok());
  auto suggestions = engine_->ReformulateTerms(*terms, 3);
  ASSERT_TRUE(suggestions.ok()) << suggestions.status().ToString();
  ASSERT_FALSE(suggestions->empty());

  ReformulatedQuery custom;
  custom.terms = {(*terms)[0], kInvalidTermId};
  auto explained = ExplainReformulation(*engine_, *terms, custom);
  ASSERT_EQ(explained.size(), 2u);
  EXPECT_TRUE(explained[0].kept);
  EXPECT_EQ(explained[1].to, kInvalidTermId);
  EXPECT_NE(explained[0].ToString(engine_->vocab()).find("keep"),
            std::string::npos);
  EXPECT_NE(explained[1].ToString(engine_->vocab()).find("drop"),
            std::string::npos);
}

TEST_F(FacetsTest, ExplainRealSuggestionHasSimilarity) {
  auto terms = engine_->ResolveQuery("uncertain query");
  ASSERT_TRUE(terms.ok());
  auto suggestions = engine_->ReformulateTerms(*terms, 3);
  ASSERT_TRUE(suggestions.ok()) << suggestions.status().ToString();
  ASSERT_FALSE(suggestions->empty());
  auto explained =
      ExplainReformulation(*engine_, *terms, (*suggestions)[0]);
  ASSERT_EQ(explained.size(), 2u);
  bool any_substitution = false;
  for (const auto& e : explained) {
    if (!e.kept && e.to != kInvalidTermId) {
      any_substitution = true;
      EXPECT_GT(e.similarity, 0.0);
      EXPECT_NE(e.ToString(engine_->vocab()).find("->"),
                std::string::npos);
    }
  }
  EXPECT_TRUE(any_substitution);
}

}  // namespace
}  // namespace kqr
