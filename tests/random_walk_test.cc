#include "walk/random_walk.h"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/graph_stats.h"
#include "graph/tat_builder.h"
#include "test_fixtures.h"

namespace kqr {
namespace {

using testing_fixtures::MicroCorpus;

class RandomWalkTest : public ::testing::Test {
 protected:
  RandomWalkTest() : corpus_(MicroCorpus::Make()) {
    auto graph =
        BuildTatGraph(corpus_.db, corpus_.vocab, corpus_.index,
                      TatBuilderOptions{.max_doc_frequency_fraction = 1.0});
    KQR_CHECK(graph.ok());
    graph_ = std::make_unique<TatGraph>(std::move(*graph));
  }

  MicroCorpus corpus_;
  std::unique_ptr<TatGraph> graph_;
};

TEST_F(RandomWalkTest, ConvergesOnMicroGraph) {
  RandomWalkEngine engine(*graph_);
  PreferenceVector r = MakeBasicPreference(
      graph_->NodeOfTerm(corpus_.Title("uncertain")));
  RandomWalkResult result = engine.Run(r);
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.iterations, 1u);
}

TEST_F(RandomWalkTest, ScoresFormDistribution) {
  RandomWalkEngine engine(*graph_);
  PreferenceVector r = MakeBasicPreference(
      graph_->NodeOfTerm(corpus_.Title("query")));
  RandomWalkResult result = engine.Run(r);
  double total = std::accumulate(result.scores.begin(),
                                 result.scores.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-6);
  for (double s : result.scores) EXPECT_GE(s, 0.0);
}

TEST_F(RandomWalkTest, StartNodeHasHighestScoreUnderOneHot) {
  NodeId start = graph_->NodeOfTerm(corpus_.Title("uncertain"));
  RandomWalkEngine engine(*graph_);
  PreferenceVector r = MakeBasicPreference(start);
  RandomWalkResult result = engine.Run(r);
  for (NodeId v = 0; v < result.scores.size(); ++v) {
    if (v == start) continue;
    EXPECT_LE(result.scores[v], result.scores[start]);
  }
}

TEST_F(RandomWalkTest, CloserNodesScoreHigher) {
  // From "uncertain": its own papers (p0, p3) should outscore the
  // unrelated paper p2's venue-mate terms.
  NodeId start = graph_->NodeOfTerm(corpus_.Title("uncertain"));
  RandomWalkEngine engine(*graph_);
  PreferenceVector r = MakeBasicPreference(start);
  RandomWalkResult result = engine.Run(r);
  NodeId p0 = graph_->NodeOfTuple({2, 0});
  NodeId p1 = graph_->NodeOfTuple({2, 1});
  EXPECT_GT(result.scores[p0], result.scores[p1]);
}

TEST_F(RandomWalkTest, DampingOneNeverRestarts) {
  RandomWalkOptions options;
  options.damping = 1.0;
  options.max_iterations = 200;
  options.epsilon = 1e-10;
  RandomWalkEngine engine(*graph_, options);
  PreferenceVector r = MakeBasicPreference(
      graph_->NodeOfTerm(corpus_.Title("uncertain")));
  RandomWalkResult result = engine.Run(r);
  // Mass is preserved even with no restart.
  double total = std::accumulate(result.scores.begin(),
                                 result.scores.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST_F(RandomWalkTest, DampingZeroReturnsPreference) {
  RandomWalkOptions options;
  options.damping = 0.0;
  RandomWalkEngine engine(*graph_, options);
  NodeId start = graph_->NodeOfTerm(corpus_.Title("uncertain"));
  PreferenceVector r = MakeBasicPreference(start);
  RandomWalkResult result = engine.Run(r);
  EXPECT_NEAR(result.scores[start], 1.0, 1e-9);
}

TEST_F(RandomWalkTest, MaxIterationsRespected) {
  RandomWalkOptions options;
  options.max_iterations = 3;
  options.epsilon = 0.0;  // never converge by epsilon
  RandomWalkEngine engine(*graph_, options);
  PreferenceVector r = MakeBasicPreference(
      graph_->NodeOfTerm(corpus_.Title("uncertain")));
  RandomWalkResult result = engine.Run(r);
  EXPECT_EQ(result.iterations, 3u);
  EXPECT_FALSE(result.converged);
}

TEST(RandomWalk, EmptyGraph) {
  Database db("empty");
  Vocabulary vocab;
  Analyzer analyzer;
  auto index = InvertedIndex::Build(db, analyzer, &vocab);
  ASSERT_TRUE(index.ok());
  auto graph = BuildTatGraph(db, vocab, *index);
  ASSERT_TRUE(graph.ok());
  RandomWalkEngine engine(*graph);
  RandomWalkResult result = engine.Run(PreferenceVector{});
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.scores.empty());
}

TEST_F(RandomWalkTest, DanglingMassRedistributed) {
  // Build a graph where the start has an isolated companion: walk from an
  // isolated node keeps all mass there via restart.
  TatBuilderOptions options;
  options.max_doc_frequency_fraction = 0.12;  // cuts df>=2 terms
  auto graph =
      BuildTatGraph(corpus_.db, corpus_.vocab, corpus_.index, options);
  ASSERT_TRUE(graph.ok());
  NodeId isolated = graph->NodeOfTerm(corpus_.Title("uncertain"));
  ASSERT_EQ(graph->Degree(isolated), 0u);
  RandomWalkEngine engine(*graph);
  PreferenceVector r = MakeBasicPreference(isolated);
  RandomWalkResult result = engine.Run(r);
  EXPECT_NEAR(result.scores[isolated], 1.0, 1e-6);
}

}  // namespace
}  // namespace kqr
