#include "walk/random_walk.h"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/graph_stats.h"
#include "graph/tat_builder.h"
#include "test_fixtures.h"

namespace kqr {
namespace {

using testing_fixtures::MicroCorpus;

class RandomWalkTest : public ::testing::Test {
 protected:
  RandomWalkTest() : corpus_(MicroCorpus::Make()) {
    auto graph =
        BuildTatGraph(corpus_.db, corpus_.vocab, corpus_.index,
                      TatBuilderOptions{.max_doc_frequency_fraction = 1.0});
    KQR_CHECK(graph.ok());
    graph_ = std::make_unique<TatGraph>(std::move(*graph));
  }

  MicroCorpus corpus_;
  std::unique_ptr<TatGraph> graph_;
};

TEST_F(RandomWalkTest, ConvergesOnMicroGraph) {
  RandomWalkEngine engine(*graph_);
  PreferenceVector r = MakeBasicPreference(
      graph_->NodeOfTerm(corpus_.Title("uncertain")));
  RandomWalkResult result = engine.Run(r);
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.iterations, 1u);
}

TEST_F(RandomWalkTest, ScoresFormDistribution) {
  RandomWalkEngine engine(*graph_);
  PreferenceVector r = MakeBasicPreference(
      graph_->NodeOfTerm(corpus_.Title("query")));
  RandomWalkResult result = engine.Run(r);
  double total = std::accumulate(result.scores.begin(),
                                 result.scores.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-6);
  for (double s : result.scores) EXPECT_GE(s, 0.0);
}

TEST_F(RandomWalkTest, StartNodeHasHighestScoreUnderOneHot) {
  NodeId start = graph_->NodeOfTerm(corpus_.Title("uncertain"));
  RandomWalkEngine engine(*graph_);
  PreferenceVector r = MakeBasicPreference(start);
  RandomWalkResult result = engine.Run(r);
  for (NodeId v = 0; v < result.scores.size(); ++v) {
    if (v == start) continue;
    EXPECT_LE(result.scores[v], result.scores[start]);
  }
}

TEST_F(RandomWalkTest, CloserNodesScoreHigher) {
  // From "uncertain": its own papers (p0, p3) should outscore the
  // unrelated paper p2's venue-mate terms.
  NodeId start = graph_->NodeOfTerm(corpus_.Title("uncertain"));
  RandomWalkEngine engine(*graph_);
  PreferenceVector r = MakeBasicPreference(start);
  RandomWalkResult result = engine.Run(r);
  NodeId p0 = graph_->NodeOfTuple({2, 0});
  NodeId p1 = graph_->NodeOfTuple({2, 1});
  EXPECT_GT(result.scores[p0], result.scores[p1]);
}

TEST_F(RandomWalkTest, DampingOneNeverRestarts) {
  RandomWalkOptions options;
  options.damping = 1.0;
  options.max_iterations = 200;
  options.epsilon = 1e-10;
  RandomWalkEngine engine(*graph_, options);
  PreferenceVector r = MakeBasicPreference(
      graph_->NodeOfTerm(corpus_.Title("uncertain")));
  RandomWalkResult result = engine.Run(r);
  // Mass is preserved even with no restart.
  double total = std::accumulate(result.scores.begin(),
                                 result.scores.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST_F(RandomWalkTest, DampingZeroReturnsPreference) {
  RandomWalkOptions options;
  options.damping = 0.0;
  RandomWalkEngine engine(*graph_, options);
  NodeId start = graph_->NodeOfTerm(corpus_.Title("uncertain"));
  PreferenceVector r = MakeBasicPreference(start);
  RandomWalkResult result = engine.Run(r);
  EXPECT_NEAR(result.scores[start], 1.0, 1e-9);
}

TEST_F(RandomWalkTest, MaxIterationsRespected) {
  RandomWalkOptions options;
  options.max_iterations = 3;
  options.epsilon = 0.0;  // never converge by epsilon
  RandomWalkEngine engine(*graph_, options);
  PreferenceVector r = MakeBasicPreference(
      graph_->NodeOfTerm(corpus_.Title("uncertain")));
  RandomWalkResult result = engine.Run(r);
  EXPECT_EQ(result.iterations, 3u);
  EXPECT_FALSE(result.converged);
}

TEST(RandomWalk, EmptyGraph) {
  Database db("empty");
  Vocabulary vocab;
  Analyzer analyzer;
  auto index = InvertedIndex::Build(db, analyzer, &vocab);
  ASSERT_TRUE(index.ok());
  auto graph = BuildTatGraph(db, vocab, *index);
  ASSERT_TRUE(graph.ok());
  RandomWalkEngine engine(*graph);
  RandomWalkResult result = engine.Run(PreferenceVector{});
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.scores.empty());
}

TEST_F(RandomWalkTest, OutOfRangePreferenceEntryIgnored) {
  // Regression: an entry pointing past the node space used to be a silent
  // out-of-bounds write. It must be dropped, leaving the walk identical to
  // one run on the valid remainder.
  RandomWalkEngine engine(*graph_);
  NodeId start = graph_->NodeOfTerm(corpus_.Title("uncertain"));
  NodeId oob = static_cast<NodeId>(graph_->num_nodes() + 100);

  PreferenceVector with_oob;
  with_oob.entries = {{start, 0.5}, {oob, 0.5}};
  RandomWalkResult got = engine.Run(with_oob);

  RandomWalkEngine clean_engine(*graph_);
  RandomWalkResult expected = clean_engine.Run(MakeBasicPreference(start));
  ASSERT_EQ(got.scores.size(), expected.scores.size());
  for (size_t v = 0; v < got.scores.size(); ++v) {
    EXPECT_DOUBLE_EQ(got.scores[v], expected.scores[v]) << "node " << v;
  }
  double total = std::accumulate(got.scores.begin(), got.scores.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST_F(RandomWalkTest, AllEntriesOutOfRangeYieldsZeroVector) {
  RandomWalkEngine engine(*graph_);
  PreferenceVector r;
  r.entries = {{static_cast<NodeId>(graph_->num_nodes()), 1.0}};
  RandomWalkResult result = engine.Run(r);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 0u);
  ASSERT_EQ(result.scores.size(), graph_->num_nodes());
  for (double s : result.scores) EXPECT_EQ(s, 0.0);
}

TEST_F(RandomWalkTest, UnnormalizedPreferenceConservesMass) {
  // Regression: the restart-mass computation assumed Σw = 1; an
  // unnormalized vector leaked (or invented) mass every iteration. Run
  // must normalize defensively.
  NodeId a = graph_->NodeOfTerm(corpus_.Title("uncertain"));
  NodeId b = graph_->NodeOfTerm(corpus_.Title("query"));

  PreferenceVector unnormalized;
  unnormalized.entries = {{a, 2.0}, {b, 3.0}};
  RandomWalkEngine engine(*graph_);
  RandomWalkResult got = engine.Run(unnormalized);
  double total = std::accumulate(got.scores.begin(), got.scores.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-6);

  PreferenceVector normalized;
  normalized.entries = {{a, 0.4}, {b, 0.6}};
  RandomWalkEngine clean_engine(*graph_);
  RandomWalkResult expected = clean_engine.Run(normalized);
  for (size_t v = 0; v < got.scores.size(); ++v) {
    EXPECT_DOUBLE_EQ(got.scores[v], expected.scores[v]) << "node " << v;
  }
}

TEST_F(RandomWalkTest, NonPositiveWeightEntriesDropped) {
  NodeId a = graph_->NodeOfTerm(corpus_.Title("uncertain"));
  NodeId b = graph_->NodeOfTerm(corpus_.Title("query"));

  PreferenceVector noisy;
  noisy.entries = {{a, 1.0}, {b, -2.0}, {b, 0.0}};
  RandomWalkEngine engine(*graph_);
  RandomWalkResult got = engine.Run(noisy);

  RandomWalkEngine clean_engine(*graph_);
  RandomWalkResult expected = clean_engine.Run(MakeBasicPreference(a));
  for (size_t v = 0; v < got.scores.size(); ++v) {
    EXPECT_DOUBLE_EQ(got.scores[v], expected.scores[v]) << "node " << v;
  }
}

TEST_F(RandomWalkTest, ScratchReuseDoesNotLeakAcrossWalks) {
  // One engine run back-to-back must match a fresh engine per walk.
  NodeId a = graph_->NodeOfTerm(corpus_.Title("uncertain"));
  NodeId b = graph_->NodeOfTerm(corpus_.Title("mining"));

  RandomWalkEngine reused(*graph_);
  reused.Run(MakeBasicPreference(a));
  RandomWalkResult second = reused.Run(MakeBasicPreference(b));

  RandomWalkEngine fresh(*graph_);
  RandomWalkResult expected = fresh.Run(MakeBasicPreference(b));
  EXPECT_EQ(second.scores, expected.scores);
  EXPECT_EQ(second.iterations, expected.iterations);
}

TEST_F(RandomWalkTest, DanglingMassRedistributed) {
  // Build a graph where the start has an isolated companion: walk from an
  // isolated node keeps all mass there via restart.
  TatBuilderOptions options;
  options.max_doc_frequency_fraction = 0.12;  // cuts df>=2 terms
  auto graph =
      BuildTatGraph(corpus_.db, corpus_.vocab, corpus_.index, options);
  ASSERT_TRUE(graph.ok());
  NodeId isolated = graph->NodeOfTerm(corpus_.Title("uncertain"));
  ASSERT_EQ(graph->Degree(isolated), 0u);
  RandomWalkEngine engine(*graph);
  PreferenceVector r = MakeBasicPreference(isolated);
  RandomWalkResult result = engine.Run(r);
  EXPECT_NEAR(result.scores[isolated], 1.0, 1e-6);
}

}  // namespace
}  // namespace kqr
