#include "closeness/closeness.h"

#include <gtest/gtest.h>

#include "closeness/closeness_index.h"
#include "graph/tat_builder.h"
#include "test_fixtures.h"

namespace kqr {
namespace {

using testing_fixtures::MicroCorpus;

class ClosenessTest : public ::testing::Test {
 protected:
  ClosenessTest() : corpus_(MicroCorpus::Make()) {
    auto graph =
        BuildTatGraph(corpus_.db, corpus_.vocab, corpus_.index,
                      TatBuilderOptions{.max_doc_frequency_fraction = 1.0});
    KQR_CHECK(graph.ok());
    graph_ = std::make_unique<TatGraph>(std::move(*graph));
    extractor_ = std::make_unique<ClosenessExtractor>(*graph_);
  }

  MicroCorpus corpus_;
  std::unique_ptr<TatGraph> graph_;
  std::unique_ptr<ClosenessExtractor> extractor_;
};

TEST_F(ClosenessTest, PairCloseness) {
  double c = extractor_->Closeness(corpus_.Title("uncertain"),
                                   corpus_.Title("query"));
  EXPECT_GT(c, 0.0);
  EXPECT_EQ(extractor_->Closeness(corpus_.Title("uncertain"),
                                  corpus_.Title("uncertain")),
            0.0);
}

TEST_F(ClosenessTest, CooccurringCloserThanIndirect) {
  TermId uncertain = corpus_.Title("uncertain");
  double direct =
      extractor_->Closeness(uncertain, corpus_.Title("query"));
  double indirect =
      extractor_->Closeness(uncertain, corpus_.Title("probabilistic"));
  EXPECT_GT(direct, indirect);
  EXPECT_GT(indirect, 0.0);
}

TEST_F(ClosenessTest, TopCloseReturnsTermsOnly) {
  auto close = extractor_->TopClose(corpus_.Title("uncertain"), 20);
  ASSERT_FALSE(close.empty());
  for (const CloseTerm& c : close) {
    EXPECT_NE(c.term, corpus_.Title("uncertain"));
    EXPECT_GT(c.closeness, 0.0);
    EXPECT_GT(c.distance, 0u);
  }
}

TEST_F(ClosenessTest, TopCloseFieldFilter) {
  auto vfield = corpus_.vocab.FindField("venues", "name");
  ASSERT_TRUE(vfield.has_value());
  auto close = extractor_->TopClose(corpus_.Title("uncertain"), 10, *vfield);
  ASSERT_FALSE(close.empty());
  for (const CloseTerm& c : close) {
    EXPECT_EQ(corpus_.vocab.field_of(c.term), *vfield);
  }
}

TEST_F(ClosenessTest, TopCloseBoundedByK) {
  auto close = extractor_->TopClose(corpus_.Title("query"), 3);
  EXPECT_LE(close.size(), 3u);
}

TEST_F(ClosenessTest, DistanceDelegates) {
  EXPECT_EQ(extractor_->Distance(corpus_.Title("uncertain"),
                                 corpus_.Title("query")),
            2);
  EXPECT_EQ(extractor_->Distance(corpus_.Title("uncertain"),
                                 corpus_.Title("probabilistic")),
            4);
}

TEST_F(ClosenessTest, IndexBuildAndPairLookup) {
  std::vector<TermId> terms = {corpus_.Title("uncertain"),
                               corpus_.Title("query")};
  ClosenessIndex index = ClosenessIndex::BuildFor(*graph_, terms);
  EXPECT_EQ(index.size(), 2u);
  EXPECT_TRUE(index.Contains(corpus_.Title("uncertain")));
  EXPECT_FALSE(index.Contains(corpus_.Title("mining")));

  double c = index.ClosenessOf(corpus_.Title("uncertain"),
                               corpus_.Title("query"));
  EXPECT_GT(c, 0.0);
  // Pair lookup is symmetric.
  EXPECT_EQ(c, index.ClosenessOf(corpus_.Title("query"),
                                 corpus_.Title("uncertain")));
}

TEST_F(ClosenessTest, IndexDistanceOf) {
  ClosenessIndex index =
      ClosenessIndex::BuildFor(*graph_, {corpus_.Title("uncertain")});
  EXPECT_EQ(index.DistanceOf(corpus_.Title("uncertain"),
                             corpus_.Title("query")),
            2);
  EXPECT_EQ(index.DistanceOf(corpus_.Title("mining"),
                             corpus_.Title("pattern")),
            -1);  // neither indexed
}

TEST_F(ClosenessTest, IndexUnknownPairIsZero) {
  ClosenessIndex index;
  EXPECT_EQ(index.ClosenessOf(1, 2), 0.0);
  EXPECT_TRUE(index.Lookup(1).empty());
}

TEST_F(ClosenessTest, IndexListSizeTruncates) {
  ClosenessIndexOptions options;
  options.list_size = 2;
  ClosenessIndex index = ClosenessIndex::BuildFor(
      *graph_, {corpus_.Title("uncertain")}, options);
  EXPECT_LE(index.Lookup(corpus_.Title("uncertain")).size(), 2u);
}

TEST_F(ClosenessTest, IndexInsertKeepsBestPair) {
  ClosenessIndex index;
  index.Insert(1, {CloseTerm{2, 0.5, 2}});
  index.Insert(2, {CloseTerm{1, 0.9, 2}});
  EXPECT_DOUBLE_EQ(index.ClosenessOf(1, 2), 0.9);
}

}  // namespace
}  // namespace kqr
