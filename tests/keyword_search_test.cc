#include "search/keyword_search.h"

#include <gtest/gtest.h>

#include "graph/tat_builder.h"
#include "test_fixtures.h"

namespace kqr {
namespace {

using testing_fixtures::MicroCorpus;

class KeywordSearchTest : public ::testing::Test {
 protected:
  KeywordSearchTest() : corpus_(MicroCorpus::Make()) {
    auto graph =
        BuildTatGraph(corpus_.db, corpus_.vocab, corpus_.index,
                      TatBuilderOptions{.max_doc_frequency_fraction = 1.0});
    KQR_CHECK(graph.ok());
    graph_ = std::make_unique<TatGraph>(std::move(*graph));
    search_ = std::make_unique<KeywordSearch>(*graph_, corpus_.index);
  }

  KeywordQuery QueryOf(std::vector<TermId> terms) {
    KeywordQuery q;
    for (TermId t : terms) {
      q.keywords.push_back(
          QueryKeyword{std::string(corpus_.vocab.text(t)), {t}});
    }
    return q;
  }

  MicroCorpus corpus_;
  std::unique_ptr<TatGraph> graph_;
  std::unique_ptr<KeywordSearch> search_;
};

TEST_F(KeywordSearchTest, SingleKeywordFindsContainingTuples) {
  SearchOutcome out =
      search_->Search(QueryOf({corpus_.Title("uncertain")}));
  // "uncertain" is in p0 and p3; roots reachable within the radius also
  // connect, but the matching papers themselves must rank first.
  ASSERT_GE(out.total_results, 2u);
  ASSERT_FALSE(out.results.empty());
  EXPECT_DOUBLE_EQ(out.results[0].score, 1.0);  // distance 0 root
}

TEST_F(KeywordSearchTest, TwoCooccurringKeywordsShareRoot) {
  SearchOutcome out = search_->Search(
      QueryOf({corpus_.Title("uncertain"), corpus_.Title("query")}));
  ASSERT_GT(out.total_results, 0u);
  // p0 contains both → a perfect root with score 1.
  EXPECT_DOUBLE_EQ(out.results[0].score, 1.0);
  EXPECT_EQ(out.results[0].paths.size(), 2u);
}

TEST_F(KeywordSearchTest, IndirectConnectionFound) {
  // "uncertain" (p0/p3) and "probabilistic" (p1) connect through venue v0.
  SearchOutcome out = search_->Search(QueryOf(
      {corpus_.Title("uncertain"), corpus_.Title("probabilistic")}));
  EXPECT_GT(out.total_results, 0u);
  ASSERT_FALSE(out.results.empty());
  EXPECT_LT(out.results[0].score, 1.0);  // no single tuple holds both
}

TEST_F(KeywordSearchTest, AuthorPlusTopicQuery) {
  SearchOutcome out = search_->Search(QueryOf(
      {corpus_.Author("alice smith"), corpus_.Title("mining")}));
  // Alice wrote p3 ("uncertain mining").
  EXPECT_GT(out.total_results, 0u);
}

TEST_F(KeywordSearchTest, UnmatchedKeywordYieldsNoResults) {
  KeywordQuery q = QueryOf({corpus_.Title("uncertain")});
  q.keywords.push_back(QueryKeyword{"ghost", {}});
  SearchOutcome out = search_->Search(q);
  EXPECT_EQ(out.total_results, 0u);
  EXPECT_TRUE(out.results.empty());
}

TEST_F(KeywordSearchTest, EmptyQueryYieldsNothing) {
  SearchOutcome out = search_->Search(KeywordQuery{});
  EXPECT_EQ(out.total_results, 0u);
}

TEST_F(KeywordSearchTest, CountMatchesSearchTotal) {
  KeywordQuery q =
      QueryOf({corpus_.Title("uncertain"), corpus_.Title("query")});
  EXPECT_EQ(search_->CountResults(q), search_->Search(q).total_results);
}

TEST_F(KeywordSearchTest, RadiusZeroRequiresSameTuple) {
  SearchOptions options;
  options.max_radius = 0;
  KeywordSearch tight(*graph_, corpus_.index, options);
  EXPECT_GT(tight.CountResults(QueryOf({corpus_.Title("uncertain"),
                                        corpus_.Title("query")})),
            0u);
  EXPECT_EQ(tight.CountResults(QueryOf({corpus_.Title("uncertain"),
                                        corpus_.Title("probabilistic")})),
            0u);
}

TEST_F(KeywordSearchTest, LargerRadiusFindsAtLeastAsMuch) {
  KeywordQuery q = QueryOf(
      {corpus_.Title("uncertain"), corpus_.Title("probabilistic")});
  size_t counts[4];
  for (size_t r = 0; r < 4; ++r) {
    SearchOptions options;
    options.max_radius = r;
    counts[r] = KeywordSearch(*graph_, corpus_.index, options)
                    .CountResults(q);
  }
  for (size_t r = 1; r < 4; ++r) EXPECT_GE(counts[r], counts[r - 1]);
}

TEST_F(KeywordSearchTest, TopKBoundsMaterializedResults) {
  SearchOptions options;
  options.top_k = 1;
  KeywordSearch limited(*graph_, corpus_.index, options);
  SearchOutcome out =
      limited.Search(QueryOf({corpus_.Title("uncertain")}));
  EXPECT_LE(out.results.size(), 1u);
  EXPECT_GE(out.total_results, 2u);
}

TEST_F(KeywordSearchTest, PathsStartAtRoot) {
  SearchOutcome out = search_->Search(QueryOf(
      {corpus_.Title("uncertain"), corpus_.Title("probabilistic")}));
  ASSERT_FALSE(out.results.empty());
  const ResultTree& tree = out.results[0];
  for (const auto& path : tree.paths) {
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), tree.root);
  }
  EXPECT_GT(tree.NumNodes(), 0u);
  EXPECT_EQ(tree.TotalLength() > 0, tree.score < 1.0);
  EXPECT_FALSE(tree.ToString(*graph_).empty());
}

}  // namespace
}  // namespace kqr
