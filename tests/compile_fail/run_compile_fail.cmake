# ctest driver for the compile-fail mini-project: wipe the scratch build
# dir, then configure tests/compile_fail from scratch (all checking
# happens at configure time via try_compile). Split out as a script
# because ctest runs exactly one command and the configure must never see
# a stale cache.
#
# Inputs (all -D, passed before -P):
#   CF_SOURCE_DIR  tests/compile_fail in the source tree
#   CF_BINARY_DIR  scratch build dir for the mini-project
#   CF_CXX         C++ compiler to probe and use
#   CF_SRC_DIR     <repo>/src (include root for common/mutex.h)
#   CF_REQUIRE     ON = missing analysis support is an error, not a skip

foreach(var CF_SOURCE_DIR CF_BINARY_DIR CF_CXX CF_SRC_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}")
  endif()
endforeach()

execute_process(COMMAND ${CMAKE_COMMAND} -E rm -rf "${CF_BINARY_DIR}")

execute_process(
  COMMAND ${CMAKE_COMMAND}
      -S "${CF_SOURCE_DIR}" -B "${CF_BINARY_DIR}"
      -DCMAKE_CXX_COMPILER=${CF_CXX}
      -DKQR_SRC_DIR=${CF_SRC_DIR}
      -DKQR_REQUIRE_THREAD_SAFETY=${CF_REQUIRE}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

# Forward the mini-project's output so ctest --output-on-failure shows
# which case misbehaved, and so the SKIP_REGULAR_EXPRESSION marker
# (KQR_COMPILE_TEST_SKIP) reaches ctest.
message("${out}")
if(err)
  message("${err}")
endif()
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "compile-fail suite failed (exit ${rc})")
endif()
