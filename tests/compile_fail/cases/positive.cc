// Baseline for the negative cases: correctly locked code the analysis
// must accept. Every rejection case below is this file with exactly one
// discipline violation introduced, so a rejection can only come from
// that violation.

#include "common/mutex.h"

namespace {

class Account {
 public:
  void Deposit(int amount) {
    kqr::MutexLock lock(&mu_);
    balance_ += amount;
  }

  int balance() const {
    kqr::MutexLock lock(&mu_);
    return balance_;
  }

  void ManualDeposit(int amount) {
    mu_.Lock();
    balance_ += amount;
    mu_.Unlock();
  }

 private:
  mutable kqr::Mutex mu_;
  int balance_ GUARDED_BY(mu_) = 0;
};

int Use() {
  Account account;
  account.Deposit(1);
  account.ManualDeposit(2);
  return account.balance();
}

const int kUsed = Use();

}  // namespace
