// MUST NOT COMPILE under -Wthread-safety -Werror: returns with the
// mutex still held (a leaked lock every later caller deadlocks on).
// Expected diagnostic:
//   mutex 'mu_' is still held at the end of function

#include "common/mutex.h"

namespace {

class Account {
 public:
  void Deposit(int amount) {
    mu_.Lock();
    balance_ += amount;
    // BAD: no Unlock() on this path
  }

 private:
  mutable kqr::Mutex mu_;
  int balance_ GUARDED_BY(mu_) = 0;
};

int Use() {
  Account account;
  account.Deposit(1);
  return 0;
}

const int kUsed = Use();

}  // namespace
