// MUST NOT COMPILE under -Wthread-safety -Werror: acquires a mutex the
// caller already holds (self-deadlock on a non-recursive mutex).
// Expected diagnostic:
//   acquiring mutex 'mu_' that is already held

#include "common/mutex.h"

namespace {

class Account {
 public:
  void Deposit(int amount) {
    mu_.Lock();
    mu_.Lock();  // BAD: already held
    balance_ += amount;
    mu_.Unlock();
    mu_.Unlock();
  }

 private:
  mutable kqr::Mutex mu_;
  int balance_ GUARDED_BY(mu_) = 0;
};

int Use() {
  Account account;
  account.Deposit(1);
  return 0;
}

const int kUsed = Use();

}  // namespace
