// MUST NOT COMPILE under -Wthread-safety -Werror: reads a GUARDED_BY
// member without holding its mutex. Expected diagnostic:
//   reading variable 'balance_' requires holding mutex 'mu_'

#include "common/mutex.h"

namespace {

class Account {
 public:
  void Deposit(int amount) {
    kqr::MutexLock lock(&mu_);
    balance_ += amount;
  }

  int balance() const {
    return balance_;  // BAD: no lock held
  }

 private:
  mutable kqr::Mutex mu_;
  int balance_ GUARDED_BY(mu_) = 0;
};

int Use() {
  Account account;
  account.Deposit(1);
  return account.balance();
}

const int kUsed = Use();

}  // namespace
