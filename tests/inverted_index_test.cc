#include "text/inverted_index.h"

#include <gtest/gtest.h>

#include "test_fixtures.h"

namespace kqr {
namespace {

using testing_fixtures::MicroCorpus;

TEST(InvertedIndex, RegistersAllTextFields) {
  MicroCorpus c = MicroCorpus::Make();
  EXPECT_TRUE(c.vocab.FindField("venues", "name").has_value());
  EXPECT_TRUE(c.vocab.FindField("authors", "name").has_value());
  EXPECT_TRUE(c.vocab.FindField("papers", "title").has_value());
  // writes has no text columns.
  EXPECT_FALSE(c.vocab.FindField("writes", "write_id").has_value());
}

TEST(InvertedIndex, PostingsForSharedTerm) {
  MicroCorpus c = MicroCorpus::Make();
  // "uncertain" appears in p0 and p3.
  TermId t = c.Title("uncertain");
  const auto& postings = c.index.Lookup(t);
  ASSERT_EQ(postings.size(), 2u);
  EXPECT_EQ(postings[0].tuple.table, 2);  // papers is the 3rd table
  EXPECT_EQ(postings[0].tuple.row, 0u);
  EXPECT_EQ(postings[1].tuple.row, 3u);
  EXPECT_EQ(c.index.DocFreq(t), 2u);
  EXPECT_EQ(c.index.TotalFreq(t), 2u);
}

TEST(InvertedIndex, SingleOccurrenceTerm) {
  MicroCorpus c = MicroCorpus::Make();
  TermId t = c.Title("probabilistic");
  EXPECT_EQ(c.index.DocFreq(t), 1u);
}

TEST(InvertedIndex, AtomicTermsIndexed) {
  MicroCorpus c = MicroCorpus::Make();
  TermId alice = c.Author("alice smith");
  const auto& postings = c.index.Lookup(alice);
  ASSERT_EQ(postings.size(), 1u);
  EXPECT_EQ(postings[0].tuple.table, 1);  // authors table
  EXPECT_EQ(postings[0].tuple.row, 0u);
}

TEST(InvertedIndex, QueryIsStemmedIntoVocabulary) {
  MicroCorpus c = MicroCorpus::Make();
  // "query" stems to "queri"; appears in p0 and p1.
  EXPECT_EQ(c.index.DocFreq(c.Title("query")), 2u);
}

TEST(InvertedIndex, UnknownTermEmpty) {
  MicroCorpus c = MicroCorpus::Make();
  EXPECT_TRUE(c.index.Lookup(999999).empty());
  EXPECT_TRUE(c.index.Lookup(kInvalidTermId).empty());
  EXPECT_EQ(c.index.TotalFreq(kInvalidTermId), 0u);
}

TEST(InvertedIndex, CorpusCounters) {
  MicroCorpus c = MicroCorpus::Make();
  // Tables with text columns: venues(2) + authors(3) + papers(4) = 9.
  EXPECT_EQ(c.index.num_corpus_tuples(), 9u);
  EXPECT_EQ(c.index.num_indexed_tuples(), 9u);
  EXPECT_GT(c.index.num_terms(), 0u);
}

TEST(InvertedIndex, TermFrequencyCounted) {
  Database db("tf");
  auto schema = Schema::Make(
      "docs",
      {Column("id", ValueType::kInt64),
       Column("body", ValueType::kString, TextRole::kSegmented)},
      "id");
  ASSERT_TRUE(schema.ok());
  Table* docs = *db.CreateTable(std::move(*schema));
  ASSERT_TRUE(
      docs->Insert({Value(int64_t{0}), Value("graph graph graph walk")})
          .ok());
  Analyzer analyzer;
  Vocabulary vocab;
  auto index = InvertedIndex::Build(db, analyzer, &vocab);
  ASSERT_TRUE(index.ok());
  FieldId f = *vocab.FindField("docs", "body");
  TermId graph = *vocab.Find(f, "graph");
  ASSERT_EQ(index->Lookup(graph).size(), 1u);
  EXPECT_EQ(index->Lookup(graph)[0].freq, 3u);
  EXPECT_EQ(index->TotalFreq(graph), 3u);
}

TEST(InvertedIndex, NullCellsSkipped) {
  Database db("nulls");
  auto schema = Schema::Make(
      "docs",
      {Column("id", ValueType::kInt64),
       Column("body", ValueType::kString, TextRole::kSegmented)},
      "id");
  ASSERT_TRUE(schema.ok());
  Table* docs = *db.CreateTable(std::move(*schema));
  ASSERT_TRUE(docs->Insert({Value(int64_t{0}), Value::Null()}).ok());
  Analyzer analyzer;
  Vocabulary vocab;
  auto index = InvertedIndex::Build(db, analyzer, &vocab);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->num_indexed_tuples(), 0u);
  EXPECT_EQ(index->num_corpus_tuples(), 1u);
  EXPECT_EQ(vocab.size(), 0u);
}

TEST(InvertedIndex, NullVocabRejected) {
  Database db("x");
  Analyzer analyzer;
  auto index = InvertedIndex::Build(db, analyzer, nullptr);
  EXPECT_TRUE(index.status().IsInvalidArgument());
}

}  // namespace
}  // namespace kqr
