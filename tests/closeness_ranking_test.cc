// Tests of the per-occurrence (normalized) closeness ranking used by the
// Table I display, and ranking stability properties of TopClose.

#include <gtest/gtest.h>

#include "closeness/closeness.h"
#include "graph/tat_builder.h"
#include "test_fixtures.h"

namespace kqr {
namespace {

using testing_fixtures::MicroCorpus;

class ClosenessRankingTest : public ::testing::Test {
 protected:
  ClosenessRankingTest() : corpus_(MicroCorpus::Make()) {
    auto graph =
        BuildTatGraph(corpus_.db, corpus_.vocab, corpus_.index,
                      TatBuilderOptions{.max_doc_frequency_fraction = 1.0});
    KQR_CHECK(graph.ok());
    graph_ = std::make_unique<TatGraph>(std::move(*graph));
  }

  MicroCorpus corpus_;
  std::unique_ptr<TatGraph> graph_;
};

TEST_F(ClosenessRankingTest, RawRankingSortedByCloseness) {
  ClosenessExtractor extractor(*graph_);
  auto close = extractor.TopClose(corpus_.Title("uncertain"), 20);
  for (size_t i = 1; i < close.size(); ++i) {
    EXPECT_GE(close[i - 1].closeness, close[i].closeness);
  }
}

TEST_F(ClosenessRankingTest, NormalizedRankingKeepsSameMembers) {
  ClosenessOptions raw;
  ClosenessOptions normalized;
  normalized.rank_normalized = true;
  auto a = ClosenessExtractor(*graph_, raw)
               .TopClose(corpus_.Title("uncertain"), 50);
  auto b = ClosenessExtractor(*graph_, normalized)
               .TopClose(corpus_.Title("uncertain"), 50);
  // With k larger than the candidate pool both rankings hold the same
  // set — only the order may differ.
  ASSERT_EQ(a.size(), b.size());
  std::vector<TermId> ta, tb;
  for (const auto& c : a) ta.push_back(c.term);
  for (const auto& c : b) tb.push_back(c.term);
  std::sort(ta.begin(), ta.end());
  std::sort(tb.begin(), tb.end());
  EXPECT_EQ(ta, tb);
}

TEST_F(ClosenessRankingTest, NormalizedRankingDemotesHubTerms) {
  // "query" (df 2, higher degree) vs "probabilistic" (df 1): under raw
  // ranking from "uncertain", query's absolute closeness wins; per-
  // occurrence ranking narrows or flips the gap. Verify order change is
  // consistent with the normalization arithmetic.
  ClosenessOptions normalized;
  normalized.rank_normalized = true;
  ClosenessExtractor extractor(*graph_, normalized);
  auto close = extractor.TopClose(corpus_.Title("uncertain"), 20);
  ASSERT_FALSE(close.empty());
  // Reconstruct keys and assert the output is sorted by them.
  auto key = [&](const CloseTerm& c) {
    return c.closeness /
           std::max(graph_->WeightedDegree(graph_->NodeOfTerm(c.term)),
                    1.0);
  };
  for (size_t i = 1; i < close.size(); ++i) {
    EXPECT_GE(key(close[i - 1]), key(close[i]) - 1e-12);
  }
}

TEST_F(ClosenessRankingTest, StoredValuesUnaffectedByRanking) {
  ClosenessOptions normalized;
  normalized.rank_normalized = true;
  auto close = ClosenessExtractor(*graph_, normalized)
                   .TopClose(corpus_.Title("uncertain"), 20);
  ClosenessExtractor raw(*graph_);
  for (const CloseTerm& c : close) {
    EXPECT_NEAR(c.closeness,
                raw.Closeness(corpus_.Title("uncertain"), c.term), 1e-9)
        << corpus_.vocab.text(c.term);
  }
}

TEST_F(ClosenessRankingTest, ClosenessNearSymmetric) {
  // Walk counting is not exactly symmetric (walks may revisit the target
  // but never the start), but both directions must agree on existence
  // and rough magnitude.
  ClosenessExtractor extractor(*graph_);
  for (auto [a, b] : {std::pair{corpus_.Title("uncertain"),
                                corpus_.Title("query")},
                      std::pair{corpus_.Title("uncertain"),
                                corpus_.Title("probabilistic")},
                      std::pair{corpus_.Title("mining"),
                                corpus_.Title("pattern")}}) {
    double fwd = extractor.Closeness(a, b);
    double bwd = extractor.Closeness(b, a);
    ASSERT_GT(fwd, 0.0);
    ASSERT_GT(bwd, 0.0);
    EXPECT_LT(std::max(fwd, bwd) / std::min(fwd, bwd), 2.0);
  }
}

}  // namespace
}  // namespace kqr
