#include "core/snapshot.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "core/engine_builder.h"
#include "test_fixtures.h"

namespace kqr {
namespace {

std::shared_ptr<const ServingModel> MakeModel() {
  auto model = EngineBuilder().Build(testing_fixtures::MakeMicroDblp());
  KQR_CHECK(model.ok());
  return std::move(model).ValueOrDie();
}

TEST(Snapshot, FingerprintStableAcrossIdenticalBuilds) {
  auto a = MakeModel();
  auto b = MakeModel();
  EXPECT_EQ(ModelFingerprint(*a), ModelFingerprint(*b));
}

TEST(Snapshot, RoundTripPreservesOfflineProducts) {
  auto source = MakeModel();
  // Prepare a couple of terms.
  auto terms = source->ResolveQuery("uncertain query");
  ASSERT_TRUE(terms.ok());
  ASSERT_TRUE(source->ReformulateTerms(*terms, 5).ok());
  ASSERT_FALSE(source->PreparedTerms().empty());

  std::ostringstream out;
  ASSERT_TRUE(SaveOfflineSnapshot(*source, out).ok());

  auto target = MakeModel();
  std::istringstream in(out.str());
  Status st = LoadOfflineSnapshot(target.get(), in);
  ASSERT_TRUE(st.ok()) << st.ToString();

  EXPECT_EQ(target->PreparedTerms(), source->PreparedTerms());
  for (TermId t : source->PreparedTerms()) {
    const auto& src_list = source->similarity_index().Lookup(t);
    const auto& dst_list = target->similarity_index().Lookup(t);
    ASSERT_EQ(src_list.size(), dst_list.size());
    for (size_t i = 0; i < src_list.size(); ++i) {
      EXPECT_EQ(src_list[i].term, dst_list[i].term);
      EXPECT_NEAR(src_list[i].score, dst_list[i].score, 1e-9);
    }
    const auto& src_clos = source->closeness_index().Lookup(t);
    const auto& dst_clos = target->closeness_index().Lookup(t);
    ASSERT_EQ(src_clos.size(), dst_clos.size());
  }
}

TEST(Snapshot, LoadedModelProducesSameReformulations) {
  auto source = MakeModel();
  auto terms = source->ResolveQuery("uncertain query");
  ASSERT_TRUE(terms.ok());
  auto expected_result = source->ReformulateTerms(*terms, 5);
  ASSERT_TRUE(expected_result.ok()) << expected_result.status().ToString();
  const auto& expected = *expected_result;

  std::ostringstream out;
  ASSERT_TRUE(SaveOfflineSnapshot(*source, out).ok());
  auto target = MakeModel();
  std::istringstream in(out.str());
  ASSERT_TRUE(LoadOfflineSnapshot(target.get(), in).ok());

  auto got_result = target->ReformulateTerms(*terms, 5);
  ASSERT_TRUE(got_result.ok()) << got_result.status().ToString();
  const auto& got = *got_result;
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].terms, expected[i].terms);
    EXPECT_NEAR(got[i].score, expected[i].score, 1e-9);
  }
}

TEST(Snapshot, RejectsBadMagic) {
  auto model = MakeModel();
  std::istringstream in("not-a-snapshot\n");
  EXPECT_TRUE(LoadOfflineSnapshot(model.get(), in).IsCorruption());
}

TEST(Snapshot, RejectsWrongFingerprint) {
  auto model = MakeModel();
  std::istringstream in("kqr-offline-v2\nfingerprint deadbeef\n");
  EXPECT_TRUE(LoadOfflineSnapshot(model.get(), in).IsInvalidArgument());
}

TEST(Snapshot, RejectsOldFormatVersion) {
  auto model = MakeModel();
  std::istringstream in("kqr-offline-v1\nfingerprint deadbeef\n");
  EXPECT_TRUE(LoadOfflineSnapshot(model.get(), in).IsCorruption());
}

TEST(Snapshot, RejectsMalformedRecords) {
  auto model = MakeModel();
  std::ostringstream header;
  header << "kqr-offline-v2\nfingerprint " << std::hex
         << ModelFingerprint(*model) << "\n";
  {
    std::istringstream in(header.str() + "sim notanumber 0\n");
    EXPECT_TRUE(LoadOfflineSnapshot(model.get(), in).IsCorruption());
  }
  {
    std::istringstream in(header.str() + "bogus 0 0\n");
    EXPECT_TRUE(LoadOfflineSnapshot(model.get(), in).IsCorruption());
  }
  {
    // clos without preceding sim.
    std::istringstream in(header.str() + "clos 0 0\n");
    EXPECT_TRUE(LoadOfflineSnapshot(model.get(), in).IsCorruption());
  }
  {
    // Term id out of range.
    std::istringstream in(header.str() + "sim 999999 0\n");
    EXPECT_TRUE(LoadOfflineSnapshot(model.get(), in).IsCorruption());
  }
}

TEST(Snapshot, NullModelRejected) {
  std::istringstream in("kqr-offline-v2\n");
  EXPECT_TRUE(LoadOfflineSnapshot(nullptr, in).IsInvalidArgument());
}

// A prepared snapshot text for the corruption tests: several terms'
// offline products plus the checksummed end trailer.
std::string MakeSnapshotText(const std::shared_ptr<const ServingModel>& m) {
  auto terms = m->ResolveQuery("uncertain query data");
  KQR_CHECK(terms.ok());
  KQR_CHECK(m->ReformulateTerms(*terms, 5).ok());
  std::ostringstream out;
  KQR_CHECK(SaveOfflineSnapshot(*m, out).ok());
  return out.str();
}

TEST(Snapshot, TruncationAlwaysDetected) {
  auto source = MakeModel();
  const std::string text = MakeSnapshotText(source);
  ASSERT_GT(text.size(), 64u);
  // Any proper prefix — whether it cuts mid-line or at a clean line
  // boundary — must fail to load: the end trailer certifies completeness.
  Rng rng(20260806);
  std::vector<size_t> cuts;
  for (int i = 0; i < 16; ++i) {
    cuts.push_back(static_cast<size_t>(rng.NextBounded(text.size())));
  }
  // Also every line boundary (the historically dangerous cuts: the v1
  // format loaded "successfully" from a file truncated between records).
  for (size_t pos = 0; pos < text.size(); ++pos) {
    if (text[pos] == '\n') cuts.push_back(pos + 1);
  }
  for (size_t cut : cuts) {
    if (cut >= text.size()) continue;
    auto target = MakeModel();
    // Debug builds pre-prepare a few probe terms during the build audit;
    // a failed load must add nothing beyond that baseline.
    const auto before = target->PreparedTerms();
    std::istringstream in(text.substr(0, cut));
    Status st = LoadOfflineSnapshot(target.get(), in);
    EXPECT_FALSE(st.ok()) << "prefix of " << cut << " bytes loaded";
    EXPECT_EQ(target->PreparedTerms(), before)
        << "truncated load at " << cut << " partially imported";
  }
}

TEST(Snapshot, SingleBitFlipsAlwaysDetected) {
  auto source = MakeModel();
  const std::string text = MakeSnapshotText(source);
  Rng rng(987654321);
  for (int trial = 0; trial < 64; ++trial) {
    const size_t pos = static_cast<size_t>(rng.NextBounded(text.size()));
    const uint8_t mask =
        static_cast<uint8_t>(1u << rng.NextBounded(8));  // nonzero → changes
    std::string corrupted = text;
    corrupted[pos] = static_cast<char>(
        static_cast<uint8_t>(corrupted[pos]) ^ mask);
    auto target = MakeModel();
    const auto before = target->PreparedTerms();
    std::istringstream in(corrupted);
    Status st = LoadOfflineSnapshot(target.get(), in);
    EXPECT_FALSE(st.ok())
        << "bit flip at byte " << pos << " (mask " << int(mask)
        << ") loaded as a valid snapshot";
    EXPECT_EQ(target->PreparedTerms(), before)
        << "corrupt load at byte " << pos << " partially imported";
  }
}

TEST(Snapshot, FileRoundTrip) {
  auto source = MakeModel();
  auto terms = source->ResolveQuery("uncertain");
  ASSERT_TRUE(terms.ok());
  ASSERT_TRUE(source->ReformulateTerms(*terms, 3).ok());
  std::string path = ::testing::TempDir() + "/kqr_snapshot_test.txt";
  ASSERT_TRUE(SaveOfflineSnapshotFile(*source, path).ok());
  auto target = MakeModel();
  EXPECT_TRUE(LoadOfflineSnapshotFile(target.get(), path).ok());
  EXPECT_EQ(target->PreparedTerms(), source->PreparedTerms());
}

TEST(Snapshot, BuilderLoadsSnapshotAtBuildTime) {
  auto source = MakeModel();
  auto terms = source->ResolveQuery("uncertain query");
  ASSERT_TRUE(terms.ok());
  auto expected_result = source->ReformulateTerms(*terms, 5);
  ASSERT_TRUE(expected_result.ok()) << expected_result.status().ToString();
  const auto& expected = *expected_result;
  std::string path = ::testing::TempDir() + "/kqr_snapshot_builder.txt";
  ASSERT_TRUE(SaveOfflineSnapshotFile(*source, path).ok());

  auto built = EngineBuilder()
                   .LoadSnapshotFrom(path)
                   .Build(testing_fixtures::MakeMicroDblp());
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto target = std::move(built).ValueOrDie();
  EXPECT_EQ(target->PreparedTerms(), source->PreparedTerms());
  auto got_result = target->ReformulateTerms(*terms, 5);
  ASSERT_TRUE(got_result.ok()) << got_result.status().ToString();
  const auto& got = *got_result;
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].terms, expected[i].terms);
    EXPECT_NEAR(got[i].score, expected[i].score, 1e-9);
  }
}

TEST(Snapshot, ImportSkipsAlreadyPreparedTerms) {
  auto model = MakeModel();
  auto terms = model->ResolveQuery("uncertain");
  ASSERT_TRUE(terms.ok());
  TermId t = (*terms)[0];
  model->EnsureTerm(t);
  const auto before = model->similarity_index().Lookup(t);
  // An import for a prepared term must not replace lists a concurrent
  // reader might already hold a reference to.
  model->ImportTermRelations(t, {SimilarTerm{t, 0.123}}, {});
  const auto& after = model->similarity_index().Lookup(t);
  ASSERT_EQ(after.size(), before.size());
  for (size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i].term, before[i].term);
    EXPECT_DOUBLE_EQ(after[i].score, before[i].score);
  }
}

TEST(Snapshot, MissingFileIsIOError) {
  auto model = MakeModel();
  EXPECT_TRUE(
      LoadOfflineSnapshotFile(model.get(), "/no/such/file").IsIOError());
}

}  // namespace
}  // namespace kqr
