#include "core/snapshot.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/engine.h"
#include "test_fixtures.h"

namespace kqr {
namespace {

std::unique_ptr<ReformulationEngine> MakeEngine() {
  auto engine =
      ReformulationEngine::Build(testing_fixtures::MakeMicroDblp());
  KQR_CHECK(engine.ok());
  return std::move(engine).ValueOrDie();
}

TEST(Snapshot, FingerprintStableAcrossIdenticalBuilds) {
  auto a = MakeEngine();
  auto b = MakeEngine();
  EXPECT_EQ(EngineFingerprint(*a), EngineFingerprint(*b));
}

TEST(Snapshot, RoundTripPreservesOfflineProducts) {
  auto source = MakeEngine();
  // Prepare a couple of terms.
  auto terms = source->ResolveQuery("uncertain query");
  ASSERT_TRUE(terms.ok());
  source->ReformulateTerms(*terms, 5);
  ASSERT_FALSE(source->PreparedTerms().empty());

  std::ostringstream out;
  ASSERT_TRUE(SaveOfflineSnapshot(*source, out).ok());

  auto target = MakeEngine();
  std::istringstream in(out.str());
  Status st = LoadOfflineSnapshot(target.get(), in);
  ASSERT_TRUE(st.ok()) << st.ToString();

  EXPECT_EQ(target->PreparedTerms(), source->PreparedTerms());
  for (TermId t : source->PreparedTerms()) {
    const auto& src_list = source->similarity_index().Lookup(t);
    const auto& dst_list = target->similarity_index().Lookup(t);
    ASSERT_EQ(src_list.size(), dst_list.size());
    for (size_t i = 0; i < src_list.size(); ++i) {
      EXPECT_EQ(src_list[i].term, dst_list[i].term);
      EXPECT_NEAR(src_list[i].score, dst_list[i].score, 1e-9);
    }
    const auto& src_clos = source->closeness_index().Lookup(t);
    const auto& dst_clos = target->closeness_index().Lookup(t);
    ASSERT_EQ(src_clos.size(), dst_clos.size());
  }
}

TEST(Snapshot, LoadedEngineProducesSameReformulations) {
  auto source = MakeEngine();
  auto terms = source->ResolveQuery("uncertain query");
  ASSERT_TRUE(terms.ok());
  auto expected = source->ReformulateTerms(*terms, 5);

  std::ostringstream out;
  ASSERT_TRUE(SaveOfflineSnapshot(*source, out).ok());
  auto target = MakeEngine();
  std::istringstream in(out.str());
  ASSERT_TRUE(LoadOfflineSnapshot(target.get(), in).ok());

  auto got = target->ReformulateTerms(*terms, 5);
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].terms, expected[i].terms);
    EXPECT_NEAR(got[i].score, expected[i].score, 1e-9);
  }
}

TEST(Snapshot, RejectsBadMagic) {
  auto engine = MakeEngine();
  std::istringstream in("not-a-snapshot\n");
  EXPECT_TRUE(LoadOfflineSnapshot(engine.get(), in).IsCorruption());
}

TEST(Snapshot, RejectsWrongFingerprint) {
  auto engine = MakeEngine();
  std::istringstream in("kqr-offline-v1\nfingerprint deadbeef\n");
  EXPECT_TRUE(
      LoadOfflineSnapshot(engine.get(), in).IsInvalidArgument());
}

TEST(Snapshot, RejectsMalformedRecords) {
  auto engine = MakeEngine();
  std::ostringstream header;
  header << "kqr-offline-v1\nfingerprint " << std::hex
         << EngineFingerprint(*engine) << "\n";
  {
    std::istringstream in(header.str() + "sim notanumber 0\n");
    EXPECT_TRUE(LoadOfflineSnapshot(engine.get(), in).IsCorruption());
  }
  {
    std::istringstream in(header.str() + "bogus 0 0\n");
    EXPECT_TRUE(LoadOfflineSnapshot(engine.get(), in).IsCorruption());
  }
  {
    // clos without preceding sim.
    std::istringstream in(header.str() + "clos 0 0\n");
    EXPECT_TRUE(LoadOfflineSnapshot(engine.get(), in).IsCorruption());
  }
  {
    // Term id out of range.
    std::istringstream in(header.str() + "sim 999999 0\n");
    EXPECT_TRUE(LoadOfflineSnapshot(engine.get(), in).IsCorruption());
  }
}

TEST(Snapshot, NullEngineRejected) {
  std::istringstream in("kqr-offline-v1\n");
  EXPECT_TRUE(LoadOfflineSnapshot(nullptr, in).IsInvalidArgument());
}

TEST(Snapshot, FileRoundTrip) {
  auto source = MakeEngine();
  auto terms = source->ResolveQuery("uncertain");
  ASSERT_TRUE(terms.ok());
  source->ReformulateTerms(*terms, 3);
  std::string path = ::testing::TempDir() + "/kqr_snapshot_test.txt";
  ASSERT_TRUE(SaveOfflineSnapshotFile(*source, path).ok());
  auto target = MakeEngine();
  EXPECT_TRUE(LoadOfflineSnapshotFile(target.get(), path).ok());
  EXPECT_EQ(target->PreparedTerms(), source->PreparedTerms());
}

TEST(Snapshot, MissingFileIsIOError) {
  auto engine = MakeEngine();
  EXPECT_TRUE(LoadOfflineSnapshotFile(engine.get(), "/no/such/file")
                  .IsIOError());
}

}  // namespace
}  // namespace kqr
