#include "core/snapshot.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/engine_builder.h"
#include "test_fixtures.h"

namespace kqr {
namespace {

std::shared_ptr<const ServingModel> MakeModel() {
  auto model = EngineBuilder().Build(testing_fixtures::MakeMicroDblp());
  KQR_CHECK(model.ok());
  return std::move(model).ValueOrDie();
}

TEST(Snapshot, FingerprintStableAcrossIdenticalBuilds) {
  auto a = MakeModel();
  auto b = MakeModel();
  EXPECT_EQ(ModelFingerprint(*a), ModelFingerprint(*b));
}

TEST(Snapshot, RoundTripPreservesOfflineProducts) {
  auto source = MakeModel();
  // Prepare a couple of terms.
  auto terms = source->ResolveQuery("uncertain query");
  ASSERT_TRUE(terms.ok());
  source->ReformulateTerms(*terms, 5);
  ASSERT_FALSE(source->PreparedTerms().empty());

  std::ostringstream out;
  ASSERT_TRUE(SaveOfflineSnapshot(*source, out).ok());

  auto target = MakeModel();
  std::istringstream in(out.str());
  Status st = LoadOfflineSnapshot(target.get(), in);
  ASSERT_TRUE(st.ok()) << st.ToString();

  EXPECT_EQ(target->PreparedTerms(), source->PreparedTerms());
  for (TermId t : source->PreparedTerms()) {
    const auto& src_list = source->similarity_index().Lookup(t);
    const auto& dst_list = target->similarity_index().Lookup(t);
    ASSERT_EQ(src_list.size(), dst_list.size());
    for (size_t i = 0; i < src_list.size(); ++i) {
      EXPECT_EQ(src_list[i].term, dst_list[i].term);
      EXPECT_NEAR(src_list[i].score, dst_list[i].score, 1e-9);
    }
    const auto& src_clos = source->closeness_index().Lookup(t);
    const auto& dst_clos = target->closeness_index().Lookup(t);
    ASSERT_EQ(src_clos.size(), dst_clos.size());
  }
}

TEST(Snapshot, LoadedModelProducesSameReformulations) {
  auto source = MakeModel();
  auto terms = source->ResolveQuery("uncertain query");
  ASSERT_TRUE(terms.ok());
  auto expected = source->ReformulateTerms(*terms, 5);

  std::ostringstream out;
  ASSERT_TRUE(SaveOfflineSnapshot(*source, out).ok());
  auto target = MakeModel();
  std::istringstream in(out.str());
  ASSERT_TRUE(LoadOfflineSnapshot(target.get(), in).ok());

  auto got = target->ReformulateTerms(*terms, 5);
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].terms, expected[i].terms);
    EXPECT_NEAR(got[i].score, expected[i].score, 1e-9);
  }
}

TEST(Snapshot, RejectsBadMagic) {
  auto model = MakeModel();
  std::istringstream in("not-a-snapshot\n");
  EXPECT_TRUE(LoadOfflineSnapshot(model.get(), in).IsCorruption());
}

TEST(Snapshot, RejectsWrongFingerprint) {
  auto model = MakeModel();
  std::istringstream in("kqr-offline-v1\nfingerprint deadbeef\n");
  EXPECT_TRUE(LoadOfflineSnapshot(model.get(), in).IsInvalidArgument());
}

TEST(Snapshot, RejectsMalformedRecords) {
  auto model = MakeModel();
  std::ostringstream header;
  header << "kqr-offline-v1\nfingerprint " << std::hex
         << ModelFingerprint(*model) << "\n";
  {
    std::istringstream in(header.str() + "sim notanumber 0\n");
    EXPECT_TRUE(LoadOfflineSnapshot(model.get(), in).IsCorruption());
  }
  {
    std::istringstream in(header.str() + "bogus 0 0\n");
    EXPECT_TRUE(LoadOfflineSnapshot(model.get(), in).IsCorruption());
  }
  {
    // clos without preceding sim.
    std::istringstream in(header.str() + "clos 0 0\n");
    EXPECT_TRUE(LoadOfflineSnapshot(model.get(), in).IsCorruption());
  }
  {
    // Term id out of range.
    std::istringstream in(header.str() + "sim 999999 0\n");
    EXPECT_TRUE(LoadOfflineSnapshot(model.get(), in).IsCorruption());
  }
}

TEST(Snapshot, NullModelRejected) {
  std::istringstream in("kqr-offline-v1\n");
  EXPECT_TRUE(LoadOfflineSnapshot(nullptr, in).IsInvalidArgument());
}

TEST(Snapshot, FileRoundTrip) {
  auto source = MakeModel();
  auto terms = source->ResolveQuery("uncertain");
  ASSERT_TRUE(terms.ok());
  source->ReformulateTerms(*terms, 3);
  std::string path = ::testing::TempDir() + "/kqr_snapshot_test.txt";
  ASSERT_TRUE(SaveOfflineSnapshotFile(*source, path).ok());
  auto target = MakeModel();
  EXPECT_TRUE(LoadOfflineSnapshotFile(target.get(), path).ok());
  EXPECT_EQ(target->PreparedTerms(), source->PreparedTerms());
}

TEST(Snapshot, BuilderLoadsSnapshotAtBuildTime) {
  auto source = MakeModel();
  auto terms = source->ResolveQuery("uncertain query");
  ASSERT_TRUE(terms.ok());
  auto expected = source->ReformulateTerms(*terms, 5);
  std::string path = ::testing::TempDir() + "/kqr_snapshot_builder.txt";
  ASSERT_TRUE(SaveOfflineSnapshotFile(*source, path).ok());

  auto built = EngineBuilder()
                   .LoadSnapshotFrom(path)
                   .Build(testing_fixtures::MakeMicroDblp());
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto target = std::move(built).ValueOrDie();
  EXPECT_EQ(target->PreparedTerms(), source->PreparedTerms());
  auto got = target->ReformulateTerms(*terms, 5);
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].terms, expected[i].terms);
    EXPECT_NEAR(got[i].score, expected[i].score, 1e-9);
  }
}

TEST(Snapshot, ImportSkipsAlreadyPreparedTerms) {
  auto model = MakeModel();
  auto terms = model->ResolveQuery("uncertain");
  ASSERT_TRUE(terms.ok());
  TermId t = (*terms)[0];
  model->EnsureTerm(t);
  const auto before = model->similarity_index().Lookup(t);
  // An import for a prepared term must not replace lists a concurrent
  // reader might already hold a reference to.
  model->ImportTermRelations(t, {SimilarTerm{t, 0.123}}, {});
  const auto& after = model->similarity_index().Lookup(t);
  ASSERT_EQ(after.size(), before.size());
  for (size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i].term, before[i].term);
    EXPECT_DOUBLE_EQ(after[i].score, before[i].score);
  }
}

TEST(Snapshot, MissingFileIsIOError) {
  auto model = MakeModel();
  EXPECT_TRUE(
      LoadOfflineSnapshotFile(model.get(), "/no/such/file").IsIOError());
}

}  // namespace
}  // namespace kqr
