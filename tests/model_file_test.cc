// Model format v3 end-to-end tests: bit-identical round trips (eager and
// partially prepared models, mmap and heap read paths), and a corruption
// suite mirroring snapshot_test.cc — truncations, per-section bit flips,
// wrong magic, bad section table, checksum mismatches. Every malformed
// file must fail with a typed Status and import nothing.

#include "core/model_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "audit/model_auditor.h"
#include "common/io/codec.h"
#include "common/io/container.h"
#include "common/io/io.h"
#include "core/engine_builder.h"
#include "core/snapshot.h"
#include "test_fixtures.h"

namespace kqr {
namespace {

std::shared_ptr<const ServingModel> MakeEagerModel() {
  EngineOptions options;
  options.precompute_offline = true;
  auto model = EngineBuilder(options).Build(testing_fixtures::MakeMicroDblp());
  KQR_CHECK(model.ok());
  return std::move(model).ValueOrDie();
}

std::shared_ptr<const ServingModel> MakeLazyModel() {
  auto model = EngineBuilder().Build(testing_fixtures::MakeMicroDblp());
  KQR_CHECK(model.ok());
  return std::move(model).ValueOrDie();
}

/// Temp file that cleans up after itself.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(::testing::TempDir() + "/" + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

Status WriteBlob(const std::string& path, const std::string& blob) {
  return WriteFileBytes(
      path, std::span<const std::byte>(
                reinterpret_cast<const std::byte*>(blob.data()),
                blob.size()));
}

void ExpectSameReformulations(const ServingModel& a, const ServingModel& b,
                              const std::vector<TermId>& terms) {
  auto ra = a.ReformulateTerms(terms, 5);
  auto rb = b.ReformulateTerms(terms, 5);
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  ASSERT_EQ(ra->size(), rb->size());
  for (size_t i = 0; i < ra->size(); ++i) {
    EXPECT_EQ((*ra)[i].terms, (*rb)[i].terms);
    // Bit-identical, not approximately equal: the mapped model decodes
    // the very scores the source model computed.
    EXPECT_EQ((*ra)[i].score, (*rb)[i].score);
  }
}

TEST(ModelFile, EagerRoundTripIsBitIdentical) {
  auto source = MakeEagerModel();
  TempFile file("eager_roundtrip.kqrm");
  ASSERT_TRUE(SaveModelFile(*source, file.path()).ok());

  EngineOptions options;
  options.precompute_offline = true;
  auto opened = ServingModel::OpenMapped(testing_fixtures::MakeMicroDblp(),
                                         file.path(), options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const ServingModel& mapped = **opened;

  EXPECT_EQ(ModelFingerprint(*source), ModelFingerprint(mapped));
  EXPECT_TRUE(mapped.fully_prepared());
  EXPECT_EQ(mapped.vocab().size(), source->vocab().size());
  EXPECT_EQ(mapped.similarity_index().size(),
            source->similarity_index().size());
  EXPECT_EQ(mapped.closeness_index().size(),
            source->closeness_index().size());
  EXPECT_FALSE(mapped.term_bounds().empty());

  auto terms = source->ResolveQuery("uncertain query");
  ASSERT_TRUE(terms.ok());
  ExpectSameReformulations(*source, mapped, *terms);
  // Vocabulary text is served zero-copy from the file; make sure lookups
  // agree with the source end to end.
  for (TermId t = 0; t < source->vocab().size(); ++t) {
    EXPECT_EQ(source->vocab().text(t), mapped.vocab().text(t));
    EXPECT_EQ(source->vocab().field_of(t), mapped.vocab().field_of(t));
  }
}

TEST(ModelFile, MappedModelPassesFullAudit) {
  auto source = MakeEagerModel();
  TempFile file("audited.kqrm");
  ASSERT_TRUE(EngineBuilder::SaveModel(*source, file.path()).ok());
  EngineOptions options;
  options.precompute_offline = true;
  auto opened = ServingModel::OpenMapped(testing_fixtures::MakeMicroDblp(),
                                         file.path(), options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const AuditReport report = ModelAuditor().Audit(**opened);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(ModelFile, HeapFallbackMatchesMmap) {
  auto source = MakeEagerModel();
  TempFile file("heap_fallback.kqrm");
  ASSERT_TRUE(SaveModelFile(*source, file.path()).ok());
  EngineOptions options;
  options.precompute_offline = true;
  ModelOpenOptions open;
  open.prefer_mmap = false;
  auto opened = ServingModel::OpenMapped(testing_fixtures::MakeMicroDblp(),
                                         file.path(), options, open);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  auto terms = source->ResolveQuery("uncertain query");
  ASSERT_TRUE(terms.ok());
  ExpectSameReformulations(*source, **opened, *terms);
}

TEST(ModelFile, PartiallyPreparedModelRoundTripsAndStaysLazy) {
  auto source = MakeLazyModel();
  auto terms = source->ResolveQuery("uncertain query");
  ASSERT_TRUE(terms.ok());
  ASSERT_TRUE(source->ReformulateTerms(*terms, 5).ok());
  ASSERT_FALSE(source->PreparedTerms().empty());
  ASSERT_FALSE(source->fully_prepared());

  TempFile file("partial.kqrm");
  ASSERT_TRUE(SaveModelFile(*source, file.path()).ok());
  auto opened =
      ServingModel::OpenMapped(testing_fixtures::MakeMicroDblp(), file.path());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const ServingModel& mapped = **opened;

  EXPECT_EQ(mapped.PreparedTerms(), source->PreparedTerms());
  EXPECT_FALSE(mapped.fully_prepared());
  ExpectSameReformulations(*source, mapped, *terms);

  // A query over unprepared terms triggers lazy preparation on the mapped
  // model, exactly like on the source model.
  auto more = source->ResolveQuery("mining pattern");
  ASSERT_TRUE(more.ok());
  ExpectSameReformulations(*source, mapped, *more);
  EXPECT_EQ(mapped.PreparedTerms(), source->PreparedTerms());
}

TEST(ModelFile, MissingFileIsIOError) {
  auto opened = ServingModel::OpenMapped(testing_fixtures::MakeMicroDblp(),
                                         ::testing::TempDir() +
                                             "/no_such_model.kqrm");
  EXPECT_TRUE(opened.status().IsIOError());
}

TEST(ModelFile, RejectsOptionsMismatch) {
  auto source = MakeEagerModel();
  TempFile file("options_mismatch.kqrm");
  ASSERT_TRUE(SaveModelFile(*source, file.path()).ok());
  EngineOptions other;
  other.similarity.list_size = 7;  // disagrees with the stored lists
  auto opened = ServingModel::OpenMapped(testing_fixtures::MakeMicroDblp(),
                                         file.path(), other);
  EXPECT_TRUE(opened.status().IsInvalidArgument())
      << opened.status().ToString();
}

// -- Corruption suite --------------------------------------------------

class ModelFileCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto source = MakeEagerModel();
    auto blob = SerializeModel(*source);
    ASSERT_TRUE(blob.ok());
    blob_ = *blob;
  }

  /// Writes `blob` and tries to open it; returns the open status.
  Status TryOpen(const std::string& blob, bool verify_checksums = true) {
    TempFile file("corrupt_probe.kqrm");
    Status write = WriteBlob(file.path(), blob);
    KQR_CHECK(write.ok()) << write.ToString();
    EngineOptions options;
    options.precompute_offline = true;
    ModelOpenOptions open;
    open.verify_checksums = verify_checksums;
    auto opened = ServingModel::OpenMapped(testing_fixtures::MakeMicroDblp(),
                                           file.path(), options, open);
    return opened.status();
  }

  std::string blob_;
};

TEST_F(ModelFileCorruptionTest, RejectsWrongMagic) {
  std::string bad = blob_;
  bad[0] = 'X';
  EXPECT_TRUE(TryOpen(bad).IsCorruption());
}

TEST_F(ModelFileCorruptionTest, RejectsEmptyAndTinyFiles) {
  EXPECT_FALSE(TryOpen("").ok());
  EXPECT_FALSE(TryOpen("kqr").ok());
  EXPECT_FALSE(TryOpen(blob_.substr(0, 39)).ok());  // header cut short
}

TEST_F(ModelFileCorruptionTest, RejectsEveryCoarseTruncation) {
  // Sweep truncation points across the whole file at a stride fine
  // enough to land inside every region (header, payloads, table).
  const size_t stride = std::max<size_t>(1, blob_.size() / 97);
  for (size_t cut = 0; cut < blob_.size(); cut += stride) {
    const Status st = TryOpen(blob_.substr(0, cut));
    EXPECT_FALSE(st.ok()) << "truncation at " << cut << " of "
                          << blob_.size();
  }
}

TEST_F(ModelFileCorruptionTest, RejectsBitFlipInEverySectionPayload) {
  auto reader = ContainerReader::Open(
      std::span<const std::byte>(
          reinterpret_cast<const std::byte*>(blob_.data()), blob_.size()),
      true);
  ASSERT_TRUE(reader.ok());
  for (const SectionInfo& section : reader->sections()) {
    if (section.length == 0) continue;
    std::string bad = blob_;
    const size_t victim = section.offset + section.length / 2;
    bad[victim] = static_cast<char>(bad[victim] ^ 0x40);
    const Status st = TryOpen(bad);
    EXPECT_TRUE(st.IsCorruption())
        << "flip in section " << section.name << " -> " << st.ToString();
  }
}

TEST_F(ModelFileCorruptionTest, RejectsBadSectionTableOffset) {
  std::string bad = blob_;
  // table_offset lives at header bytes [24, 32); point it past the end.
  std::string patched;
  PutU64Le(&patched, blob_.size() + 1024);
  bad.replace(24, 8, patched);
  EXPECT_TRUE(TryOpen(bad).IsCorruption());
}

TEST_F(ModelFileCorruptionTest, RejectsTamperedHeaderCounts) {
  std::string bad = blob_;
  bad[8] = static_cast<char>(bad[8] ^ 0x01);  // version word
  EXPECT_TRUE(TryOpen(bad).IsCorruption());
  bad = blob_;
  bad[12] = static_cast<char>(bad[12] ^ 0x01);  // num_sections word
  EXPECT_TRUE(TryOpen(bad).IsCorruption());
}

TEST_F(ModelFileCorruptionTest, ChecksumVerificationCatchesScoreFlips) {
  // Flip a byte inside a raw score array: structurally valid (any bytes
  // are a double), so only the payload checksum can catch it.
  auto reader = ContainerReader::Open(
      std::span<const std::byte>(
          reinterpret_cast<const std::byte*>(blob_.data()), blob_.size()),
      true);
  ASSERT_TRUE(reader.ok());
  for (const SectionInfo& section : reader->sections()) {
    if (section.name != "sim.scores") continue;
    ASSERT_GT(section.length, 0u);
    std::string bad = blob_;
    const size_t victim = section.offset + 3;
    bad[victim] = static_cast<char>(bad[victim] ^ 0x01);
    EXPECT_TRUE(TryOpen(bad, /*verify_checksums=*/true).IsCorruption());
  }
}

}  // namespace
}  // namespace kqr
