#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace kqr {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoryCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad k");
}

TEST(Status, AllFactoriesMapToTheirCode) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(Status, CopyIsCheapAndShared) {
  Status s = Status::IOError("disk gone");
  Status t = s;
  EXPECT_TRUE(t.IsIOError());
  EXPECT_EQ(t.message(), "disk gone");
}

TEST(Status, ReturnNotOkMacroPropagates) {
  auto fail = []() -> Status { return Status::NotFound("missing"); };
  auto wrapper = [&]() -> Status {
    KQR_RETURN_NOT_OK(fail());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsNotFound());
}

TEST(Status, ReturnNotOkMacroPassesThroughOk) {
  auto ok = []() -> Status { return Status::OK(); };
  auto wrapper = [&]() -> Status {
    KQR_RETURN_NOT_OK(ok());
    return Status::Internal("reached end");
  };
  EXPECT_TRUE(wrapper().IsInternal());
}

TEST(Result, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r(Status::NotFound("no such"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(42), 42);
}

TEST(Result, ValueOrReturnsValueWhenOk) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r.ValueOr("fallback"), "hello");
}

TEST(Result, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(v.size(), 3u);
}

TEST(Result, AssignOrReturnMacro) {
  auto make = [](bool ok) -> Result<int> {
    if (ok) return 5;
    return Status::OutOfRange("nope");
  };
  auto use = [&](bool ok) -> Status {
    KQR_ASSIGN_OR_RETURN(int v, make(ok));
    EXPECT_EQ(v, 5);
    return Status::OK();
  };
  EXPECT_TRUE(use(true).ok());
  EXPECT_TRUE(use(false).IsOutOfRange());
}

TEST(Result, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace kqr
