#include "core/rank_baseline.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace kqr {
namespace {

std::vector<std::vector<CandidateState>> MakeCandidates(
    std::vector<std::vector<double>> sims) {
  std::vector<std::vector<CandidateState>> out;
  TermId next = 0;
  for (const auto& position : sims) {
    std::vector<CandidateState> states;
    for (double s : position) {
      CandidateState c;
      c.term = next++;
      c.similarity = s;
      states.push_back(c);
    }
    out.push_back(std::move(states));
  }
  return out;
}

TEST(RankBaseline, BestCombinationFirst) {
  auto candidates = MakeCandidates({{0.9, 0.5}, {0.8, 0.7}});
  auto result = RankBaselineTopK(candidates, 4);
  ASSERT_EQ(result.size(), 4u);
  EXPECT_NEAR(result[0].score, 0.72, 1e-12);  // 0.9 * 0.8
  EXPECT_EQ(result[0].states, (std::vector<int>{0, 0}));
}

TEST(RankBaseline, ScoresDescend) {
  auto candidates = MakeCandidates({{0.9, 0.5, 0.1}, {0.8, 0.7, 0.2}});
  auto result = RankBaselineTopK(candidates, 9);
  ASSERT_EQ(result.size(), 9u);
  for (size_t i = 1; i < result.size(); ++i) {
    EXPECT_GE(result[i - 1].score, result[i].score);
  }
}

TEST(RankBaseline, MatchesBruteForce) {
  auto candidates =
      MakeCandidates({{0.9, 0.45, 0.3}, {0.6, 0.5}, {0.8, 0.35, 0.2}});
  auto result = RankBaselineTopK(candidates, 18);
  // Brute force all 18 combinations.
  std::vector<double> all;
  for (double a : {0.9, 0.45, 0.3}) {
    for (double b : {0.6, 0.5}) {
      for (double c : {0.8, 0.35, 0.2}) all.push_back(a * b * c);
    }
  }
  std::sort(all.rbegin(), all.rend());
  ASSERT_EQ(result.size(), all.size());
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_NEAR(result[i].score, all[i], 1e-12) << "rank " << i;
  }
}

TEST(RankBaseline, UnsortedInputHandled) {
  // Candidates need not arrive sorted by similarity.
  auto candidates = MakeCandidates({{0.1, 0.9, 0.5}});
  auto result = RankBaselineTopK(candidates, 3);
  ASSERT_EQ(result.size(), 3u);
  EXPECT_EQ(result[0].states[0], 1);  // index of 0.9 in original order
  EXPECT_EQ(result[1].states[0], 2);
  EXPECT_EQ(result[2].states[0], 0);
}

TEST(RankBaseline, KBoundsOutput) {
  auto candidates = MakeCandidates({{0.9, 0.5}, {0.8, 0.7}});
  EXPECT_EQ(RankBaselineTopK(candidates, 2).size(), 2u);
  EXPECT_EQ(RankBaselineTopK(candidates, 100).size(), 4u);
  EXPECT_TRUE(RankBaselineTopK(candidates, 0).empty());
}

TEST(RankBaseline, EmptyInputs) {
  EXPECT_TRUE(RankBaselineTopK({}, 5).empty());
  auto with_empty_position = MakeCandidates({{0.9}, {}});
  EXPECT_TRUE(RankBaselineTopK(with_empty_position, 5).empty());
}

TEST(RankBaseline, DistinctCombinations) {
  auto candidates = MakeCandidates({{0.5, 0.5}, {0.5, 0.5}});
  auto result = RankBaselineTopK(candidates, 4);
  ASSERT_EQ(result.size(), 4u);
  for (size_t i = 0; i < result.size(); ++i) {
    for (size_t j = i + 1; j < result.size(); ++j) {
      EXPECT_NE(result[i].states, result[j].states);
    }
  }
}

}  // namespace
}  // namespace kqr
