#include "text/porter_stemmer.h"

#include <gtest/gtest.h>

namespace kqr {
namespace {

// Known vectors from Porter's paper and the reference implementation.
struct Vector {
  const char* in;
  const char* out;
};

class PorterVectors : public ::testing::TestWithParam<Vector> {};

TEST_P(PorterVectors, StemsToReference) {
  PorterStemmer s;
  EXPECT_EQ(s.Stem(GetParam().in), GetParam().out)
      << "input: " << GetParam().in;
}

INSTANTIATE_TEST_SUITE_P(
    Step1a, PorterVectors,
    ::testing::Values(Vector{"caresses", "caress"}, Vector{"ponies", "poni"},
                      Vector{"caress", "caress"}, Vector{"cats", "cat"}));

INSTANTIATE_TEST_SUITE_P(
    Step1b, PorterVectors,
    ::testing::Values(Vector{"feed", "feed"}, Vector{"agreed", "agre"},
                      Vector{"plastered", "plaster"},
                      Vector{"bled", "bled"}, Vector{"motoring", "motor"},
                      Vector{"sing", "sing"}, Vector{"conflated", "conflat"},
                      Vector{"troubled", "troubl"}, Vector{"sized", "size"},
                      Vector{"hopping", "hop"}, Vector{"tanned", "tan"},
                      Vector{"falling", "fall"}, Vector{"hissing", "hiss"},
                      Vector{"fizzed", "fizz"}, Vector{"failing", "fail"},
                      Vector{"filing", "file"}));

INSTANTIATE_TEST_SUITE_P(
    Step1c, PorterVectors,
    ::testing::Values(Vector{"happy", "happi"}, Vector{"sky", "sky"}));

INSTANTIATE_TEST_SUITE_P(
    Step2, PorterVectors,
    ::testing::Values(Vector{"relational", "relat"},
                      Vector{"conditional", "condit"},
                      Vector{"rational", "ration"},
                      Vector{"valenci", "valenc"},
                      Vector{"digitizer", "digit"},
                      Vector{"operator", "oper"},
                      Vector{"feudalism", "feudal"},
                      Vector{"decisiveness", "decis"},
                      Vector{"hopefulness", "hope"},
                      Vector{"formaliti", "formal"},
                      Vector{"sensitiviti", "sensit"}));

INSTANTIATE_TEST_SUITE_P(
    Step3, PorterVectors,
    ::testing::Values(Vector{"triplicate", "triplic"},
                      Vector{"formative", "form"},
                      Vector{"formalize", "formal"},
                      Vector{"electriciti", "electr"},
                      Vector{"electrical", "electr"},
                      Vector{"hopeful", "hope"}, Vector{"goodness", "good"}));

INSTANTIATE_TEST_SUITE_P(
    Step4, PorterVectors,
    ::testing::Values(Vector{"revival", "reviv"},
                      Vector{"allowance", "allow"},
                      Vector{"inference", "infer"}, Vector{"airliner", "airlin"},
                      Vector{"gyroscopic", "gyroscop"},
                      Vector{"adjustable", "adjust"},
                      Vector{"defensible", "defens"},
                      Vector{"irritant", "irrit"},
                      Vector{"replacement", "replac"},
                      Vector{"adjustment", "adjust"},
                      Vector{"dependent", "depend"},
                      Vector{"adoption", "adopt"}, Vector{"homologou", "homolog"},
                      Vector{"communism", "commun"},
                      Vector{"activate", "activ"},
                      Vector{"angulariti", "angular"},
                      Vector{"homologous", "homolog"},
                      Vector{"effective", "effect"},
                      Vector{"bowdlerize", "bowdler"}));

INSTANTIATE_TEST_SUITE_P(
    Step5, PorterVectors,
    ::testing::Values(Vector{"probate", "probat"}, Vector{"rate", "rate"},
                      Vector{"cease", "ceas"}, Vector{"controll", "control"},
                      Vector{"roll", "roll"}));

INSTANTIATE_TEST_SUITE_P(
    DomainWords, PorterVectors,
    ::testing::Values(Vector{"probabilistic", "probabilist"},
                      Vector{"indexing", "index"},
                      Vector{"queries", "queri"},
                      Vector{"clustering", "cluster"},
                      Vector{"databases", "databas"},
                      Vector{"mining", "mine"},
                      Vector{"uncertain", "uncertain"},
                      Vector{"xml", "xml"}));

TEST(PorterStemmer, ShortWordsUnchanged) {
  PorterStemmer s;
  EXPECT_EQ(s.Stem("ab"), "ab");
  EXPECT_EQ(s.Stem("a"), "a");
  EXPECT_EQ(s.Stem(""), "");
}

TEST(PorterStemmer, NonLowercaseInputUnchanged) {
  PorterStemmer s;
  EXPECT_EQ(s.Stem("Running"), "Running");
  EXPECT_EQ(s.Stem("web2"), "web2");
}

TEST(PorterStemmer, IdempotentOnItsOutputs) {
  PorterStemmer s;
  for (const char* w :
       {"relational", "probabilistic", "clustering", "mining", "queries",
        "effective", "happy", "generalization"}) {
    std::string once = s.Stem(w);
    std::string twice = s.Stem(once);
    // Porter is not strictly idempotent in general, but for these common
    // corpus words the fixed point is reached after one application.
    EXPECT_EQ(once, twice) << w;
  }
}

TEST(PorterStemmer, MergesInflectionFamilies) {
  PorterStemmer s;
  EXPECT_EQ(s.Stem("index"), s.Stem("indexing"));
  EXPECT_EQ(s.Stem("cluster"), s.Stem("clustering"));
  EXPECT_EQ(s.Stem("clusters"), s.Stem("clustering"));
}

}  // namespace
}  // namespace kqr
