#!/usr/bin/env python3
"""Unit tests for tools/lint.py: one fire case and one no-fire case per
rule, plus the `lint:allow` waiver semantics (exact rule-name match; a
waiver never leaks onto a different rule on the same line).

Run directly or via ctest (registered as `lint_test` in
tests/CMakeLists.txt). The tests build throwaway repo trees under a
tempdir and run the Linter class against them, so they are independent of
the real repo's contents.
"""

import os
import sys
import tempfile
import unittest

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                 "tools"))
import lint  # noqa: E402


class LintCase(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = self._tmp.name
        for d in ("src", "tests", "bench", "examples", "tools"):
            os.makedirs(os.path.join(self.root, d), exist_ok=True)

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, rel, text):
        path = os.path.join(self.root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)
        return path

    def run_lint(self):
        return lint.Linter(self.root).run()

    def findings_for(self, rule):
        return [f for f in self.run_lint() if f"[{rule}]" in f]


class PragmaOnceTest(LintCase):
    def test_fires_on_missing_pragma(self):
        self.write("src/a.h", "int f();\n")
        self.assertTrue(self.findings_for("pragma-once"))

    def test_fires_on_include_guard(self):
        self.write("src/a.h",
                   "#ifndef KQR_A_H_\n#define KQR_A_H_\n#pragma once\n"
                   "#endif\n")
        self.assertTrue(self.findings_for("pragma-once"))

    def test_clean_header_passes(self):
        self.write("src/a.h", "#pragma once\nint f();\n")
        self.assertFalse(self.findings_for("pragma-once"))


class RngDisciplineTest(LintCase):
    def test_fires_on_random_device(self):
        self.write("src/a.cc", "#include <random>\nstd::random_device rd;\n")
        self.assertTrue(self.findings_for("rng-discipline"))

    def test_fires_on_rand_call(self):
        self.write("src/a.cc", "int x() { return rand(); }\n")
        self.assertTrue(self.findings_for("rng-discipline"))

    def test_common_rng_is_exempt(self):
        self.write("src/common/rng.cc", "std::random_device rd;\n")
        self.assertFalse(self.findings_for("rng-discipline"))

    def test_comment_mention_passes(self):
        self.write("src/a.cc", "// not std::random_device, honest\n")
        self.assertFalse(self.findings_for("rng-discipline"))


class MutableGlobalTest(LintCase):
    def test_fires_on_namespace_scope_variable(self):
        self.write("src/a.cc",
                   "namespace kqr {\nint counter = 0;\n}  // namespace kqr\n")
        self.assertTrue(self.findings_for("mutable-global"))

    def test_const_global_passes(self):
        self.write("src/a.cc",
                   "namespace kqr {\nconstexpr int kMax = 4;\n}\n")
        self.assertFalse(self.findings_for("mutable-global"))

    def test_class_member_passes(self):
        self.write("src/a.h",
                   "#pragma once\nnamespace kqr {\nclass A {\n"
                   "  int member_ = 0;\n};\n}\n")
        self.assertFalse(self.findings_for("mutable-global"))


class OptionsMutationTest(LintCase):
    def test_fires_on_const_cast_in_src(self):
        self.write("src/a.cc",
                   "void f(const int& x) { const_cast<int&>(x) = 1; }\n")
        self.assertTrue(self.findings_for("options-mutation"))

    def test_fires_on_mutable_options_outside_builder(self):
        self.write("src/a.cc", "auto& o = model.mutable_options();\n")
        self.assertTrue(self.findings_for("options-mutation"))

    def test_builder_header_is_exempt(self):
        self.write("src/core/engine_builder.h",
                   "#pragma once\nEngineOptions& mutable_options();\n")
        self.assertFalse(self.findings_for("options-mutation"))


class FacadeIncludeTest(LintCase):
    def test_fires_on_core_include_from_examples(self):
        self.write("examples/demo.cpp", '#include "core/serving_model.h"\n')
        self.assertTrue(self.findings_for("facade-include"))

    def test_facade_include_passes(self):
        self.write("examples/demo.cpp", '#include "kqr.h"\n')
        self.assertFalse(self.findings_for("facade-include"))

    def test_allowlisted_bench_is_exempt(self):
        self.write("bench/micro_kernels.cc", '#include "core/hmm.h"\n')
        self.assertFalse(self.findings_for("facade-include"))


class MetricsDisciplineTest(LintCase):
    def test_fires_on_direct_increment_in_hot_file(self):
        self.write("src/core/reformulator.cc",
                   "void f() { counter->Increment(); }\n")
        self.assertTrue(self.findings_for("metrics-discipline"))

    def test_cold_file_passes(self):
        self.write("src/core/engine_builder.cc",
                   "void f() { counter->Increment(); }\n")
        self.assertFalse(self.findings_for("metrics-discipline"))


class IoDisciplineTest(LintCase):
    def test_fires_on_fstream_in_src(self):
        self.write("src/a.cc", "std::ofstream out(path);\n")
        self.assertTrue(self.findings_for("io-discipline"))

    def test_common_io_is_exempt(self):
        self.write("src/common/io/io.cc", "std::ifstream in(path);\n")
        self.assertFalse(self.findings_for("io-discipline"))

    def test_grandfathered_loader_is_exempt(self):
        self.write("src/storage/csv.cc", "std::ifstream in(path);\n")
        self.assertFalse(self.findings_for("io-discipline"))


class LockDisciplineTest(LintCase):
    def test_fires_on_raw_mutex(self):
        self.write("src/core/a.h",
                   "#pragma once\nclass A { std::mutex mu_; };\n")
        self.assertTrue(self.findings_for("lock-discipline"))

    def test_fires_on_lock_guard(self):
        self.write("src/server/a.cc",
                   "void f() { std::lock_guard<std::mutex> l(mu_); }\n")
        self.assertTrue(self.findings_for("lock-discipline"))

    def test_fires_on_condition_variable(self):
        self.write("src/server/a.cc", "std::condition_variable cv_;\n")
        self.assertTrue(self.findings_for("lock-discipline"))

    def test_common_is_exempt(self):
        self.write("src/common/mutex.h",
                   "#pragma once\nclass Mutex { std::mutex mu_; };\n")
        self.assertFalse(self.findings_for("lock-discipline"))

    def test_wrapper_use_passes(self):
        self.write("src/core/a.cc", "MutexLock lock(&mu_);\n")
        self.assertFalse(self.findings_for("lock-discipline"))

    def test_comment_mention_passes(self):
        self.write("src/core/a.cc", "// replaced std::mutex with Mutex\n")
        self.assertFalse(self.findings_for("lock-discipline"))

    def test_tests_are_exempt(self):
        self.write("tests/a_test.cc", "std::mutex mu;\n")
        self.assertFalse(self.findings_for("lock-discipline"))


class NetDisciplineTest(LintCase):
    def test_fires_on_raw_connect_in_shard(self):
        self.write("src/shard/a.cc",
                   "int fd = ::connect(s, addr, len);\n")
        self.assertTrue(self.findings_for("net-discipline"))

    def test_fires_on_epoll_outside_net(self):
        self.write("src/server/a.cc", "int ep = epoll_create1(0);\n")
        self.assertTrue(self.findings_for("net-discipline"))

    def test_fires_on_setsockopt_in_core(self):
        self.write("src/core/a.cc",
                   "setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &on, 4);\n")
        self.assertTrue(self.findings_for("net-discipline"))

    def test_src_net_is_exempt(self):
        self.write("src/net/socket.cc",
                   "int fd = ::socket(AF_INET, SOCK_STREAM, 0);\n"
                   "::bind(fd, addr, len);\n")
        self.assertFalse(self.findings_for("net-discipline"))

    def test_wrapper_use_passes(self):
        self.write("src/shard/a.cc",
                   "auto s = Socket::ConnectTcp(host, port, t);\n")
        self.assertFalse(self.findings_for("net-discipline"))

    def test_member_call_named_send_passes(self):
        # `.send(` / `->send(` are method calls on some object, not the
        # syscall; the lookbehind must not flag them.
        self.write("src/shard/a.cc", "queue.send(item); q->send(item);\n")
        self.assertFalse(self.findings_for("net-discipline"))

    def test_comment_mention_passes(self):
        self.write("src/shard/a.cc", "// never call connect( here\n")
        self.assertFalse(self.findings_for("net-discipline"))

    def test_tests_are_exempt(self):
        self.write("tests/a_test.cc",
                   "int fd = ::socket(AF_INET, SOCK_STREAM, 0);\n")
        self.assertFalse(self.findings_for("net-discipline"))


class WaiverTest(LintCase):
    def test_exact_waiver_suppresses(self):
        self.write("src/core/a.h",
                   "#pragma once\n"
                   "std::mutex raw_mu;  // lint:allow lock-discipline\n")
        self.assertFalse(self.findings_for("lock-discipline"))

    def test_waiver_for_other_rule_does_not_suppress(self):
        self.write("src/core/a.h",
                   "#pragma once\n"
                   "std::mutex raw_mu;  // lint:allow io-discipline\n")
        self.assertTrue(self.findings_for("lock-discipline"))

    def test_prefix_of_rule_name_does_not_suppress(self):
        # Historical bug: substring matching let `lint:allow lock` (or any
        # waiver whose text contained the rule name) waive lock-discipline.
        self.write("src/core/a.h",
                   "#pragma once\nstd::mutex raw_mu;  // lint:allow lock\n")
        self.assertTrue(self.findings_for("lock-discipline"))

    def test_one_waiver_comment_can_list_several_rules(self):
        self.write(
            "src/core/reformulator.cc",
            "void f() { c->Increment(); std::mutex m; }"
            "  // lint:allow metrics-discipline lock-discipline\n")
        self.assertFalse(self.findings_for("metrics-discipline"))
        self.assertFalse(self.findings_for("lock-discipline"))


class SilentEmptyTest(LintCase):
    def test_fires_on_or_empty_declaration(self):
        self.write("src/core/a.h",
                   "#pragma once\n"
                   "std::vector<int> RankTermsOrEmpty(int k) const;\n")
        self.assertTrue(self.findings_for("silent-empty"))

    def test_fires_on_or_empty_call(self):
        self.write("src/core/a.cc",
                   "void f() { auto r = model.ReformulateTermsOrEmpty(q); }\n")
        self.assertTrue(self.findings_for("silent-empty"))

    def test_result_returning_api_passes(self):
        self.write("src/core/a.h",
                   "#pragma once\n"
                   "Result<std::vector<int>> RankTerms(int k) const;\n")
        self.assertFalse(self.findings_for("silent-empty"))

    def test_comment_mention_passes(self):
        self.write("src/core/a.cc",
                   "// the old ReformulateTermsOrEmpty(q) shim is gone\n")
        self.assertFalse(self.findings_for("silent-empty"))

    def test_tests_and_bench_are_exempt(self):
        # The rule polices the library surface, not test doubles.
        self.write("tests/a.cc", "auto r = FakeOrEmpty(1);\n")
        self.assertFalse(self.findings_for("silent-empty"))

    def test_waiver_suppresses(self):
        self.write("src/core/a.h",
                   "#pragma once\n"
                   "int CountOrEmpty(int k);  // lint:allow silent-empty\n")
        self.assertFalse(self.findings_for("silent-empty"))


class IncludeCycleTest(LintCase):
    def test_fires_on_two_header_cycle(self):
        self.write("src/a.h", '#pragma once\n#include "b.h"\n')
        self.write("src/b.h", '#pragma once\n#include "a.h"\n')
        self.assertTrue(self.findings_for("include-cycle"))

    def test_acyclic_graph_passes(self):
        self.write("src/a.h", '#pragma once\n#include "b.h"\n')
        self.write("src/b.h", "#pragma once\n")
        self.assertFalse(self.findings_for("include-cycle"))


class RealRepoTest(unittest.TestCase):
    def test_repo_is_clean(self):
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        findings = lint.Linter(root).run()
        self.assertEqual(findings, [],
                         "repo must lint clean:\n" + "\n".join(findings))


if __name__ == "__main__":
    unittest.main()
