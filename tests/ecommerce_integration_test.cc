// End-to-end integration on the second (e-commerce) schema: proves no
// component assumes the bibliographic schema.

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/engine_builder.h"
#include "core/facets.h"
#include "datagen/ecommerce_gen.h"

namespace kqr {
namespace {

class EcommerceIntegration : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    EcommerceOptions options;
    options.num_products = 400;
    options.num_reviews = 800;
    auto corpus = GenerateEcommerce(options);
    KQR_CHECK(corpus.ok());
    auto engine = EngineBuilder().Build(std::move(corpus->db));
    KQR_CHECK(engine.ok());
    engine_ = std::move(*engine);
  }
  static void TearDownTestSuite() {
    engine_.reset();
  }

  static std::shared_ptr<const ServingModel> engine_;
};

std::shared_ptr<const ServingModel> EcommerceIntegration::engine_;

TEST_F(EcommerceIntegration, GraphCoversAllTables) {
  // 4 tables of tuples plus term nodes.
  EXPECT_EQ(engine_->graph().space().num_tables(), 4u);
  EXPECT_GT(engine_->graph().num_edges(), 0u);
  EXPECT_GT(engine_->vocab().num_fields(), 3u);
}

TEST_F(EcommerceIntegration, ReformulatesProductQuery) {
  auto result = engine_->Reformulate("wireless bluetooth", 5);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->empty());
  for (const auto& q : *result) {
    EXPECT_EQ(q.terms.size(), 2u);
    EXPECT_GT(q.score, 0.0);
  }
}

TEST_F(EcommerceIntegration, DomainSimilarityIsTopical) {
  // Similar terms of "camping" should contain outdoor vocabulary.
  auto terms = engine_->ResolveQuery("camping");
  ASSERT_TRUE(terms.ok());
  engine_->EnsureTerm((*terms)[0]);
  const auto& similar =
      engine_->similarity_index().Lookup((*terms)[0]);
  ASSERT_FALSE(similar.empty());
  TopicModel retail = TopicModel::Retail();
  auto camping_topics = retail.TopicsOfStem("camp");
  ASSERT_FALSE(camping_topics.empty());
  size_t matched = 0, judged = 0;
  for (const SimilarTerm& s : similar) {
    auto topics =
        retail.TopicsOfStem(std::string(engine_->vocab().text(s.term)));
    if (topics.empty()) continue;
    ++judged;
    if (std::find(topics.begin(), topics.end(), camping_topics[0]) !=
        topics.end()) {
      ++matched;
    }
  }
  ASSERT_GT(judged, 0u);
  EXPECT_GT(static_cast<double>(matched) / judged, 0.5);
}

TEST_F(EcommerceIntegration, SearchAcrossBrandAndTitle) {
  // A brand name + product word query connects via the products table.
  const Table* brands = engine_->db().FindTable("brands");
  ASSERT_NE(brands, nullptr);
  std::string brand = brands->row(0).at(1).AsString();
  auto outcome = engine_->Search(brand);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_GT(outcome->total_results, 0u);
}

TEST_F(EcommerceIntegration, FacetsGroupSuggestions) {
  auto terms = engine_->ResolveQuery("yoga mat");
  ASSERT_TRUE(terms.ok());
  auto suggestions = engine_->ReformulateTerms(*terms, 8);
  ASSERT_TRUE(suggestions.ok()) << suggestions.status().ToString();
  ASSERT_FALSE(suggestions->empty());
  auto facets = GroupByFacets(*terms, *suggestions, engine_->vocab());
  ASSERT_FALSE(facets.empty());
  size_t total = 0;
  for (const auto& f : facets) total += f.suggestions.size();
  EXPECT_EQ(total, suggestions->size());
}

TEST_F(EcommerceIntegration, ReviewsContributeTerms) {
  auto field = engine_->vocab().FindField("reviews", "body");
  ASSERT_TRUE(field.has_value());
  size_t review_terms = 0;
  for (TermId t = 0; t < engine_->vocab().size(); ++t) {
    if (engine_->vocab().field_of(t) == *field) ++review_terms;
  }
  EXPECT_GT(review_terms, 0u);
}

}  // namespace
}  // namespace kqr
