#include "storage/table.h"

#include <gtest/gtest.h>

#include "storage/catalog.h"
#include "storage/database.h"

namespace kqr {
namespace {

Schema TwoColSchema(const std::string& name = "t") {
  return std::move(Schema::Make(name,
                                {Column("id", ValueType::kInt64),
                                 Column("txt", ValueType::kString)},
                                "id"))
      .ValueOrDie();
}

TEST(Table, InsertAndFetch) {
  Table t(TwoColSchema());
  auto r = t.Insert({Value(int64_t{10}), Value("a")});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 0u);
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.row(0).at(1).AsString(), "a");
  EXPECT_EQ(t.PrimaryKeyOf(0), 10);
}

TEST(Table, FindByPk) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.Insert({Value(int64_t{5}), Value("x")}).ok());
  ASSERT_TRUE(t.Insert({Value(int64_t{9}), Value("y")}).ok());
  EXPECT_EQ(*t.FindByPk(9), 1u);
  EXPECT_EQ(*t.FindByPk(5), 0u);
  EXPECT_FALSE(t.FindByPk(7).has_value());
}

TEST(Table, RejectsDuplicatePk) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.Insert({Value(int64_t{1}), Value("a")}).ok());
  auto dup = t.Insert({Value(int64_t{1}), Value("b")});
  EXPECT_TRUE(dup.status().IsAlreadyExists());
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(Table, RejectsBadRow) {
  Table t(TwoColSchema());
  EXPECT_TRUE(t.Insert({Value(int64_t{1})}).status().IsInvalidArgument());
  EXPECT_TRUE(t.Insert({Value("not int"), Value("b")})
                  .status()
                  .IsInvalidArgument());
}

TEST(Tuple, ToStringJoinsCells) {
  Tuple t({Value(int64_t{1}), Value("x"), Value::Null()});
  EXPECT_EQ(t.ToString(), "1 | x | ");
  EXPECT_EQ(t.size(), 3u);
}

TEST(Catalog, CreateAndFind) {
  Catalog c;
  auto t = c.CreateTable(TwoColSchema("alpha"));
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(c.FindTable("alpha"), *t);
  EXPECT_EQ(c.FindTable("beta"), nullptr);
  EXPECT_EQ(c.num_tables(), 1u);
}

TEST(Catalog, TablePointerStaysValidAcrossCreates) {
  Catalog c;
  Table* first = *c.CreateTable(TwoColSchema("t0"));
  ASSERT_TRUE(first->Insert({Value(int64_t{1}), Value("a")}).ok());
  for (int i = 1; i < 20; ++i) {
    std::string name = "t";
    name += std::to_string(i);
    ASSERT_TRUE(c.CreateTable(TwoColSchema(name)).ok());
  }
  // The regression this guards: CreateTable once keyed tables by a
  // dangling moved-from name, corrupting the registry.
  EXPECT_EQ(c.FindTable("t0"), first);
  EXPECT_EQ(first->num_rows(), 1u);
  EXPECT_EQ(c.num_tables(), 20u);
}

TEST(Catalog, RejectsDuplicateName) {
  Catalog c;
  ASSERT_TRUE(c.CreateTable(TwoColSchema("dup")).ok());
  EXPECT_TRUE(c.CreateTable(TwoColSchema("dup")).status().IsAlreadyExists());
}

TEST(Catalog, TablesInCreationOrder) {
  Catalog c;
  ASSERT_TRUE(c.CreateTable(TwoColSchema("zz")).ok());
  ASSERT_TRUE(c.CreateTable(TwoColSchema("aa")).ok());
  auto tables = c.tables();
  ASSERT_EQ(tables.size(), 2u);
  EXPECT_EQ(tables[0]->name(), "zz");
  EXPECT_EQ(tables[1]->name(), "aa");
}

TEST(Catalog, ValidateForeignKeyTargets) {
  Catalog c;
  Schema child = std::move(Schema::Make("child",
                                        {Column("id", ValueType::kInt64),
                                         Column("pid", ValueType::kInt64)},
                                        "id",
                                        {ForeignKey{"pid", "parent"}}))
                     .ValueOrDie();
  ASSERT_TRUE(c.CreateTable(std::move(child)).ok());
  EXPECT_TRUE(c.ValidateForeignKeyTargets().IsInvalidArgument());
  ASSERT_TRUE(c.CreateTable(TwoColSchema("parent")).ok());
  EXPECT_TRUE(c.ValidateForeignKeyTargets().ok());
}

TEST(Database, ValidateIntegrityCatchesDanglingFk) {
  Database db("test");
  Schema parent = TwoColSchema("parent");
  Schema child = std::move(Schema::Make("child",
                                        {Column("id", ValueType::kInt64),
                                         Column("pid", ValueType::kInt64)},
                                        "id",
                                        {ForeignKey{"pid", "parent"}}))
                     .ValueOrDie();
  Table* pt = *db.CreateTable(std::move(parent));
  Table* ct = *db.CreateTable(std::move(child));
  ASSERT_TRUE(pt->Insert({Value(int64_t{1}), Value("p")}).ok());
  ASSERT_TRUE(ct->Insert({Value(int64_t{1}), Value(int64_t{1})}).ok());
  EXPECT_TRUE(db.ValidateIntegrity().ok());

  ASSERT_TRUE(ct->Insert({Value(int64_t{2}), Value(int64_t{99})}).ok());
  EXPECT_TRUE(db.ValidateIntegrity().IsCorruption());
}

TEST(Database, NullFkIsAllowed) {
  Database db("test");
  ASSERT_TRUE(db.CreateTable(TwoColSchema("parent")).ok());
  Schema child = std::move(Schema::Make("child",
                                        {Column("id", ValueType::kInt64),
                                         Column("pid", ValueType::kInt64)},
                                        "id",
                                        {ForeignKey{"pid", "parent"}}))
                     .ValueOrDie();
  Table* ct = *db.CreateTable(std::move(child));
  ASSERT_TRUE(ct->Insert({Value(int64_t{1}), Value::Null()}).ok());
  EXPECT_TRUE(db.ValidateIntegrity().ok());
}

TEST(Database, TotalRows) {
  Database db("test");
  Table* a = *db.CreateTable(TwoColSchema("a"));
  Table* b = *db.CreateTable(TwoColSchema("b"));
  ASSERT_TRUE(a->Insert({Value(int64_t{1}), Value("x")}).ok());
  ASSERT_TRUE(b->Insert({Value(int64_t{1}), Value("y")}).ok());
  ASSERT_TRUE(b->Insert({Value(int64_t{2}), Value("z")}).ok());
  EXPECT_EQ(db.TotalRows(), 3u);
}

}  // namespace
}  // namespace kqr
