// Tests of the HMM construction options: log compression, emission and
// transition log-linear weights — the knobs DESIGN.md §5 documents.

#include <gtest/gtest.h>

#include <numeric>

#include "core/hmm.h"
#include "graph/tat_builder.h"
#include "test_fixtures.h"

namespace kqr {
namespace {

using testing_fixtures::MicroCorpus;

class HmmOptionsTest : public ::testing::Test {
 protected:
  HmmOptionsTest() : corpus_(MicroCorpus::Make()) {
    auto graph =
        BuildTatGraph(corpus_.db, corpus_.vocab, corpus_.index,
                      TatBuilderOptions{.max_doc_frequency_fraction = 1.0});
    KQR_CHECK(graph.ok());
    graph_ = std::make_unique<TatGraph>(std::move(*graph));
    stats_ = std::make_unique<GraphStats>(*graph_);
    std::vector<TermId> all;
    for (TermId t = 0; t < corpus_.vocab.size(); ++t) all.push_back(t);
    similarity_ = SimilarityIndex::BuildFor(*graph_, *stats_, all);
    closeness_ = ClosenessIndex::BuildFor(*graph_, all);
  }

  HmmModel Build(HmmOptions options) {
    CandidateBuilder builder(similarity_);
    auto candidates = builder.Build(
        {corpus_.Title("uncertain"), corpus_.Title("query")});
    HmmBuilder hmm(closeness_, *stats_, *graph_, options);
    return hmm.Build(candidates);
  }

  static void ExpectNormalized(const HmmModel& model) {
    double pi = std::accumulate(model.pi.begin(), model.pi.end(), 0.0);
    EXPECT_NEAR(pi, 1.0, 1e-9);
    for (const auto& e : model.emission) {
      EXPECT_NEAR(std::accumulate(e.begin(), e.end(), 0.0), 1.0, 1e-9);
    }
    for (const auto& layer : model.trans) {
      for (const auto& row : layer) {
        EXPECT_NEAR(std::accumulate(row.begin(), row.end(), 0.0), 1.0,
                    1e-9);
      }
    }
  }

  MicroCorpus corpus_;
  std::unique_ptr<TatGraph> graph_;
  std::unique_ptr<GraphStats> stats_;
  SimilarityIndex similarity_;
  ClosenessIndex closeness_;
};

TEST_F(HmmOptionsTest, AllVariantsStayNormalized) {
  for (bool compress : {false, true}) {
    for (double ew : {1.0, 2.0, 3.0}) {
      for (double tw : {0.5, 1.0}) {
        HmmOptions options;
        options.log_compress = compress;
        options.emission_weight = ew;
        options.transition_weight = tw;
        ExpectNormalized(Build(options));
      }
    }
  }
}

TEST_F(HmmOptionsTest, LogCompressFlattensPi) {
  HmmOptions raw;
  raw.log_compress = false;
  HmmOptions compressed;
  compressed.log_compress = true;
  HmmModel a = Build(raw);
  HmmModel b = Build(compressed);
  // Compression shrinks the ratio between the largest and smallest π.
  auto ratio = [](const std::vector<double>& pi) {
    double lo = 1e300, hi = 0;
    for (double p : pi) {
      lo = std::min(lo, p);
      hi = std::max(hi, p);
    }
    return hi / lo;
  };
  EXPECT_LT(ratio(b.pi), ratio(a.pi) + 1e-12);
}

TEST_F(HmmOptionsTest, EmissionWeightSharpensDistribution) {
  HmmOptions flat;
  flat.emission_weight = 1.0;
  HmmOptions sharp;
  sharp.emission_weight = 3.0;
  HmmModel a = Build(flat);
  HmmModel b = Build(sharp);
  // Max emission probability grows with the weight.
  auto peak = [](const std::vector<double>& e) {
    double hi = 0;
    for (double x : e) hi = std::max(hi, x);
    return hi;
  };
  EXPECT_GE(peak(b.emission[0]), peak(a.emission[0]) - 1e-12);
}

TEST_F(HmmOptionsTest, TransitionWeightBelowOneFlattensRows) {
  HmmOptions plain;
  plain.transition_weight = 1.0;
  HmmOptions soft;
  soft.transition_weight = 0.25;
  HmmModel a = Build(plain);
  HmmModel b = Build(soft);
  auto spread = [](const std::vector<double>& row) {
    double lo = 1e300, hi = 0;
    for (double x : row) {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
    return hi - lo;
  };
  // Softened transitions are closer to uniform on the same row.
  EXPECT_LE(spread(b.trans[0][0]), spread(a.trans[0][0]) + 1e-12);
}

TEST_F(HmmOptionsTest, PathScoreConsistentAcrossOptions) {
  // Whatever the options, PathScore must equal the explicit product.
  for (double ew : {1.0, 2.0}) {
    HmmOptions options;
    options.emission_weight = ew;
    HmmModel model = Build(options);
    std::vector<int> path = {1 % int(model.num_states(0)),
                             2 % int(model.num_states(1))};
    double expected = model.pi[path[0]] * model.emission[0][path[0]] *
                      model.trans[0][path[0]][path[1]] *
                      model.emission[1][path[1]];
    EXPECT_NEAR(model.PathScore(path), expected, 1e-15);
  }
}

}  // namespace
}  // namespace kqr
