#include "walk/similarity.h"

#include <gtest/gtest.h>

#include "graph/tat_builder.h"
#include "test_fixtures.h"
#include "walk/cooccurrence.h"
#include "walk/preference.h"
#include "walk/similarity_index.h"

namespace kqr {
namespace {

using testing_fixtures::MicroCorpus;

class SimilarityTest : public ::testing::Test {
 protected:
  SimilarityTest() : corpus_(MicroCorpus::Make()) {
    auto graph =
        BuildTatGraph(corpus_.db, corpus_.vocab, corpus_.index,
                      TatBuilderOptions{.max_doc_frequency_fraction = 1.0});
    KQR_CHECK(graph.ok());
    graph_ = std::make_unique<TatGraph>(std::move(*graph));
    stats_ = std::make_unique<GraphStats>(*graph_);
  }

  MicroCorpus corpus_;
  std::unique_ptr<TatGraph> graph_;
  std::unique_ptr<GraphStats> stats_;
};

TEST_F(SimilarityTest, ContextualPreferencePointsAtNeighbors) {
  NodeId start = graph_->NodeOfTerm(corpus_.Title("uncertain"));
  PreferenceVector r = MakeContextualPreference(*graph_, *stats_, start);
  ASSERT_FALSE(r.entries.empty());
  double total = 0;
  bool has_self = false;
  for (const auto& [node, w] : r.entries) {
    EXPECT_GT(w, 0.0);
    total += w;
    if (node == start) {
      has_self = true;
    } else {
      // Context nodes are direct neighbors (Def. 6): the papers
      // containing the term.
      EXPECT_EQ(graph_->KindOf(node), NodeKind::kTuple);
    }
  }
  EXPECT_TRUE(has_self);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_F(SimilarityTest, ContextualPreferenceIsolatedFallsBackToBasic) {
  TatBuilderOptions options;
  options.max_doc_frequency_fraction = 0.12;
  auto graph =
      BuildTatGraph(corpus_.db, corpus_.vocab, corpus_.index, options);
  ASSERT_TRUE(graph.ok());
  GraphStats stats(*graph);
  NodeId isolated = graph->NodeOfTerm(corpus_.Title("uncertain"));
  PreferenceVector r = MakeContextualPreference(*graph, stats, isolated);
  ASSERT_EQ(r.entries.size(), 1u);
  EXPECT_EQ(r.entries[0].first, isolated);
}

TEST_F(SimilarityTest, MaxNodesPerFieldTruncates) {
  NodeId start = graph_->NodeOfTerm(corpus_.Title("uncertain"));
  ContextualPreferenceOptions options;
  options.max_nodes_per_field = 1;
  PreferenceVector r =
      MakeContextualPreference(*graph_, *stats_, start, options);
  // Start + at most 1 context node per field (papers only here).
  EXPECT_LE(r.entries.size(), 2u);
}

TEST_F(SimilarityTest, TopSimilarReturnsSameClassOnly) {
  SimilarityExtractor extractor(*graph_, *stats_);
  NodeId start = graph_->NodeOfTerm(corpus_.Title("uncertain"));
  auto similar = extractor.TopSimilar(start, 10);
  ASSERT_FALSE(similar.empty());
  for (const ScoredNode& s : similar) {
    EXPECT_NE(s.node, start);
    EXPECT_EQ(graph_->ClassOf(s.node), graph_->ClassOf(start));
    EXPECT_GT(s.score, 0.0);
  }
}

TEST_F(SimilarityTest, ScoresDescending) {
  SimilarityExtractor extractor(*graph_, *stats_);
  auto similar = extractor.TopSimilar(
      graph_->NodeOfTerm(corpus_.Title("query")), 10);
  for (size_t i = 1; i < similar.size(); ++i) {
    EXPECT_GE(similar[i - 1].score, similar[i].score);
  }
}

TEST_F(SimilarityTest, UncertainFindsProbabilisticViaContext) {
  // The paper's motivating pair: they never co-occur in a title but share
  // venue + "query". The walk must surface "probabilistic" among the top
  // similar title terms of "uncertain".
  SimilarityExtractor extractor(*graph_, *stats_);
  auto similar = extractor.TopSimilar(
      graph_->NodeOfTerm(corpus_.Title("uncertain")), 10);
  NodeId probabilistic =
      graph_->NodeOfTerm(corpus_.Title("probabilistic"));
  bool found = false;
  for (const ScoredNode& s : similar) {
    if (s.node == probabilistic) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(SimilarityTest, KBoundsOutput) {
  SimilarityExtractor extractor(*graph_, *stats_);
  auto similar = extractor.TopSimilar(
      graph_->NodeOfTerm(corpus_.Title("query")), 2);
  EXPECT_LE(similar.size(), 2u);
}

TEST_F(SimilarityTest, BasicModeRuns) {
  SimilarityOptions options;
  options.mode = PreferenceMode::kBasic;
  SimilarityExtractor extractor(*graph_, *stats_, options);
  auto similar = extractor.TopSimilar(
      graph_->NodeOfTerm(corpus_.Title("uncertain")), 5);
  EXPECT_FALSE(similar.empty());
}

TEST_F(SimilarityTest, SimilarityIndexBuildForAndLookup) {
  std::vector<TermId> terms = {corpus_.Title("uncertain"),
                               corpus_.Title("query")};
  SimilarityIndex index =
      SimilarityIndex::BuildFor(*graph_, *stats_, terms);
  EXPECT_EQ(index.size(), 2u);
  EXPECT_TRUE(index.Contains(corpus_.Title("uncertain")));
  EXPECT_FALSE(index.Contains(corpus_.Title("mining")));
  EXPECT_FALSE(index.Lookup(corpus_.Title("uncertain")).empty());
  EXPECT_TRUE(index.Lookup(corpus_.Title("mining")).empty());
}

TEST_F(SimilarityTest, SimilarityOfSymmetricLookup) {
  std::vector<TermId> terms = {corpus_.Title("uncertain")};
  SimilarityIndex index =
      SimilarityIndex::BuildFor(*graph_, *stats_, terms);
  TermId u = corpus_.Title("uncertain");
  TermId q = corpus_.Title("query");
  double forward = index.SimilarityOf(u, q);
  double backward = index.SimilarityOf(q, u);
  EXPECT_EQ(forward, backward);
  EXPECT_GT(forward, 0.0);
}

TEST_F(SimilarityTest, IndexInsertOverrides) {
  SimilarityIndex index;
  TermId t = corpus_.Title("query");
  index.Insert(t, {SimilarTerm{corpus_.Title("uncertain"), 0.5}});
  ASSERT_EQ(index.Lookup(t).size(), 1u);
  index.Insert(t, {});
  EXPECT_TRUE(index.Lookup(t).empty());
}

TEST_F(SimilarityTest, CooccurrenceFindsDirectCooccurringTerms) {
  CooccurrenceOptions options;
  options.tuple_radius = 0;  // strict same-tuple
  CooccurrenceSimilarity cooc(*graph_, options);
  auto similar = cooc.TopSimilar(corpus_.Title("uncertain"));
  // Same-title terms: data, query (p0), mining (p3).
  ASSERT_FALSE(similar.empty());
  bool has_query = false, has_probabilistic = false;
  for (const SimilarTerm& s : similar) {
    if (s.term == corpus_.Title("query")) has_query = true;
    if (s.term == corpus_.Title("probabilistic")) has_probabilistic = true;
  }
  EXPECT_TRUE(has_query);
  // "probabilistic" never co-occurs with "uncertain" in a tuple.
  EXPECT_FALSE(has_probabilistic);
}

TEST_F(SimilarityTest, CooccurrenceAuthorsReachCollaboratorsAtRadius4) {
  CooccurrenceOptions options;
  options.tuple_radius = 4;
  options.max_expand_degree = 0;
  CooccurrenceSimilarity cooc(*graph_, options);
  auto similar = cooc.TopSimilar(corpus_.Author("alice smith"));
  // Alice co-authored p3 with Carol; Bob never collaborated with her.
  bool has_carol = false;
  for (const SimilarTerm& s : similar) {
    if (s.term == corpus_.Author("carol wu")) has_carol = true;
    EXPECT_NE(s.term, corpus_.Author("alice smith"));
  }
  EXPECT_TRUE(has_carol);
}

TEST_F(SimilarityTest, CooccurrenceScoresNormalized) {
  CooccurrenceSimilarity cooc(*graph_);
  auto similar = cooc.TopSimilar(corpus_.Title("query"));
  double total = 0;
  for (const SimilarTerm& s : similar) {
    EXPECT_GT(s.score, 0.0);
    total += s.score;
  }
  EXPECT_LE(total, 1.0 + 1e-9);
}

TEST_F(SimilarityTest, CooccurrenceBuildIndex) {
  CooccurrenceSimilarity cooc(*graph_);
  SimilarityIndex index = cooc.BuildIndex({corpus_.Title("uncertain")});
  EXPECT_TRUE(index.Contains(corpus_.Title("uncertain")));
  EXPECT_FALSE(index.Lookup(corpus_.Title("uncertain")).empty());
}

}  // namespace
}  // namespace kqr
