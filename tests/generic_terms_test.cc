// End-to-end behavior around generic filler vocabulary: the df cut keeps
// the worst hubs out of the TAT graph, the popularity discount demotes
// the rest in similar lists, and reformulations avoid pure-filler
// substitutions.

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/engine_builder.h"
#include "datagen/dblp_gen.h"
#include "text/porter_stemmer.h"

namespace kqr {
namespace {

class GenericTermsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DblpOptions options;
    options.num_authors = 400;
    options.num_papers = 1500;
    options.num_venues = 24;
    auto corpus = GenerateDblp(options);
    KQR_CHECK(corpus.ok());
    auto engine = EngineBuilder().Build(std::move(corpus->db));
    KQR_CHECK(engine.ok());
    engine_ = std::move(*engine);
  }
  static void TearDownTestSuite() {
    engine_.reset();
  }

  static bool IsGeneric(const std::string& stem) {
    PorterStemmer stemmer;
    for (const std::string& g : GenericTitleWords()) {
      if (stemmer.Stem(g) == stem) return true;
    }
    return false;
  }

  static std::shared_ptr<const ServingModel> engine_;
};

std::shared_ptr<const ServingModel> GenericTermsTest::engine_;

TEST_F(GenericTermsTest, GenericWordsAreInTheIndex) {
  // The df cut removes hub terms from the *graph*, never the index.
  auto field = engine_->vocab().FindField("papers", "title");
  ASSERT_TRUE(field.has_value());
  PorterStemmer stemmer;
  size_t found = 0;
  for (const std::string& g : GenericTitleWords()) {
    auto id = engine_->vocab().Find(*field, stemmer.Stem(g));
    if (id.has_value() && engine_->index().DocFreq(*id) > 0) ++found;
  }
  EXPECT_GE(found, GenericTitleWords().size() / 2);
}

TEST_F(GenericTermsTest, MostFrequentGenericCutFromGraph) {
  // "efficient" lands in ~20%+ of titles — above the 25%-of-tuples cut
  // relative to corpus tuples only when the corpus is title-heavy; at
  // least verify the invariant: any term above the cut is isolated.
  const double cut =
      engine_->options().graph.max_doc_frequency_fraction;
  const size_t cap = static_cast<size_t>(
      cut * double(engine_->index().num_corpus_tuples()));
  for (TermId t = 0; t < engine_->vocab().size(); ++t) {
    if (cap > 0 && engine_->index().DocFreq(t) > cap) {
      EXPECT_EQ(engine_->graph().Degree(engine_->graph().NodeOfTerm(t)),
                0u)
          << engine_->vocab().Describe(t);
    }
  }
}

TEST_F(GenericTermsTest, SimilarListsMostlyNonGeneric) {
  // The popularity discount must keep filler out of the head of the
  // similar lists for topical probes.
  auto terms = engine_->ResolveQuery("probabilistic");
  ASSERT_TRUE(terms.ok());
  engine_->EnsureTerm((*terms)[0]);
  const auto& list = engine_->similarity_index().Lookup((*terms)[0]);
  ASSERT_GE(list.size(), 5u);
  size_t generic_in_head = 0;
  for (size_t i = 0; i < 5; ++i) {
    if (IsGeneric(std::string(engine_->vocab().text(list[i].term)))) {
      ++generic_in_head;
    }
  }
  EXPECT_LE(generic_in_head, 1u);
}

TEST_F(GenericTermsTest, TopSuggestionsMostlyNonGeneric) {
  auto result = engine_->Reformulate("probabilistic query", 5);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->empty());
  size_t generic_positions = 0, total_positions = 0;
  for (const auto& q : *result) {
    for (TermId t : q.terms) {
      if (t == kInvalidTermId) continue;
      ++total_positions;
      if (IsGeneric(std::string(engine_->vocab().text(t)))) ++generic_positions;
    }
  }
  ASSERT_GT(total_positions, 0u);
  EXPECT_LT(static_cast<double>(generic_positions) / total_positions,
            0.34);
}

}  // namespace
}  // namespace kqr
