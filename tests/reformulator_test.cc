#include "core/reformulator.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/tat_builder.h"
#include "test_fixtures.h"

namespace kqr {
namespace {

using testing_fixtures::MicroCorpus;

class ReformulatorTest : public ::testing::Test {
 protected:
  ReformulatorTest() : corpus_(MicroCorpus::Make()) {
    auto graph =
        BuildTatGraph(corpus_.db, corpus_.vocab, corpus_.index,
                      TatBuilderOptions{.max_doc_frequency_fraction = 1.0});
    KQR_CHECK(graph.ok());
    graph_ = std::make_unique<TatGraph>(std::move(*graph));
    stats_ = std::make_unique<GraphStats>(*graph_);
    std::vector<TermId> all;
    for (TermId t = 0; t < corpus_.vocab.size(); ++t) all.push_back(t);
    similarity_ = SimilarityIndex::BuildFor(*graph_, *stats_, all);
    closeness_ = ClosenessIndex::BuildFor(*graph_, all);
  }

  Reformulator Make(ReformulatorOptions options = {}) {
    return Reformulator(similarity_, closeness_, *stats_, *graph_,
                        options);
  }

  /// Unwraps a reformulation Result for the happy-path tests; the error
  /// contract itself is tested in EmptyQueryOrZeroK / ValidateRejects*.
  static std::vector<ReformulatedQuery> Unwrap(
      Result<std::vector<ReformulatedQuery>> result) {
    KQR_CHECK(result.ok()) << result.status().ToString();
    return std::move(result).ValueUnsafe();
  }

  MicroCorpus corpus_;
  std::unique_ptr<TatGraph> graph_;
  std::unique_ptr<GraphStats> stats_;
  SimilarityIndex similarity_;
  ClosenessIndex closeness_;
};

TEST_F(ReformulatorTest, ProducesScoredQueries) {
  Reformulator r = Make();
  auto result = Unwrap(r.Reformulate(
      {corpus_.Title("uncertain"), corpus_.Title("query")}, 5));
  ASSERT_FALSE(result.empty());
  for (const auto& q : result) {
    EXPECT_EQ(q.terms.size(), 2u);
    EXPECT_GT(q.score, 0.0);
    EXPECT_FALSE(q.is_identity);
  }
  for (size_t i = 1; i < result.size(); ++i) {
    EXPECT_GE(result[i - 1].score, result[i].score);
  }
}

TEST_F(ReformulatorTest, IdentityDroppedByDefault) {
  Reformulator r = Make();
  auto result = Unwrap(r.Reformulate(
      {corpus_.Title("uncertain"), corpus_.Title("query")}, 10));
  for (const auto& q : result) {
    EXPECT_FALSE(q.terms[0] == corpus_.Title("uncertain") &&
                 q.terms[1] == corpus_.Title("query"));
  }
}

TEST_F(ReformulatorTest, IdentityKeptWhenConfigured) {
  ReformulatorOptions options;
  options.drop_identity = false;
  Reformulator r = Make(options);
  auto result = Unwrap(r.Reformulate(
      {corpus_.Title("uncertain"), corpus_.Title("query")}, 30));
  bool saw_identity = false;
  for (const auto& q : result) {
    if (q.is_identity) saw_identity = true;
  }
  EXPECT_TRUE(saw_identity);
}

TEST_F(ReformulatorTest, AllAlgorithmsProduceResults) {
  for (TopKAlgorithm algorithm :
       {TopKAlgorithm::kExtendedViterbi, TopKAlgorithm::kViterbiAStar,
        TopKAlgorithm::kRankBaseline}) {
    ReformulatorOptions options;
    options.algorithm = algorithm;
    Reformulator r = Make(options);
    auto result = Unwrap(r.Reformulate(
        {corpus_.Title("uncertain"), corpus_.Title("query")}, 3));
    EXPECT_FALSE(result.empty())
        << "algorithm " << TopKAlgorithmName(algorithm);
  }
}

TEST_F(ReformulatorTest, HmmAlgorithmsAgreeOnRanking) {
  ReformulatorOptions viterbi_options;
  viterbi_options.algorithm = TopKAlgorithm::kExtendedViterbi;
  ReformulatorOptions astar_options;
  astar_options.algorithm = TopKAlgorithm::kViterbiAStar;
  auto a = Unwrap(Make(viterbi_options)
                      .Reformulate({corpus_.Title("uncertain"),
                                    corpus_.Title("query")},
                                   5));
  auto b = Unwrap(Make(astar_options)
                      .Reformulate({corpus_.Title("uncertain"),
                                    corpus_.Title("query")},
                                   5));
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    // Scores must agree rank-for-rank; term sequences may swap between
    // equal-score ties, so compare them as multisets.
    EXPECT_NEAR(a[i].score, b[i].score, 1e-12);
  }
  auto key = [](const ReformulatedQuery& q) { return q.terms; };
  std::vector<std::vector<TermId>> ta, tb;
  for (const auto& q : a) ta.push_back(key(q));
  for (const auto& q : b) tb.push_back(key(q));
  std::sort(ta.begin(), ta.end());
  std::sort(tb.begin(), tb.end());
  EXPECT_EQ(ta, tb);
}

TEST_F(ReformulatorTest, TimingsPopulated) {
  Reformulator r = Make();
  ReformulationTimings timings;
  Unwrap(r.Reformulate(
      {corpus_.Title("uncertain"), corpus_.Title("query")}, 5, &timings));
  EXPECT_GE(timings.candidate_seconds, 0.0);
  EXPECT_GE(timings.model_seconds, 0.0);
  EXPECT_GE(timings.decode_seconds, 0.0);
  EXPECT_GT(timings.TotalSeconds(), 0.0);
}

TEST_F(ReformulatorTest, KBoundsResults) {
  Reformulator r = Make();
  auto result = Unwrap(r.Reformulate(
      {corpus_.Title("uncertain"), corpus_.Title("query")}, 2));
  EXPECT_LE(result.size(), 2u);
}

TEST_F(ReformulatorTest, EmptyQueryOrZeroK) {
  // Degenerate inputs are typed errors now, not silently empty results.
  Reformulator r = Make();
  auto empty_query = r.Reformulate({}, 5);
  ASSERT_FALSE(empty_query.ok());
  EXPECT_TRUE(empty_query.status().IsInvalidArgument())
      << empty_query.status().ToString();
  auto zero_k = r.Reformulate({corpus_.Title("uncertain")}, 0);
  ASSERT_FALSE(zero_k.ok());
  EXPECT_TRUE(zero_k.status().IsInvalidArgument())
      << zero_k.status().ToString();
}

TEST_F(ReformulatorTest, SingleKeywordQuery) {
  Reformulator r = Make();
  auto result = Unwrap(r.Reformulate({corpus_.Title("uncertain")}, 3));
  ASSERT_FALSE(result.empty());
  // Substitutes must come from the similar list — same field class.
  for (const auto& q : result) {
    ASSERT_EQ(q.terms.size(), 1u);
    EXPECT_NE(q.terms[0], corpus_.Title("uncertain"));
  }
}

TEST_F(ReformulatorTest, VoidStateCanDeleteTerms) {
  ReformulatorOptions options;
  options.candidates.include_void = true;
  options.candidates.void_similarity = 10.0;  // force deletions up
  Reformulator r = Make(options);
  auto result = Unwrap(r.Reformulate(
      {corpus_.Title("uncertain"), corpus_.Title("query")}, 20));
  bool saw_void = false;
  for (const auto& q : result) {
    for (TermId t : q.terms) {
      if (t == kInvalidTermId) saw_void = true;
    }
  }
  EXPECT_TRUE(saw_void);
}

TEST_F(ReformulatorTest, ValidateRejectsUnservableOptions) {
  ReformulatorOptions ok;
  EXPECT_TRUE(ok.Validate().ok());

  ReformulatorOptions no_states;
  no_states.candidates.per_term = 0;
  no_states.candidates.include_original = false;
  no_states.candidates.include_void = false;
  EXPECT_TRUE(no_states.Validate().IsInvalidArgument());

  // per_term = 0 is fine as long as some candidate source remains.
  ReformulatorOptions identity_only;
  identity_only.candidates.per_term = 0;
  EXPECT_TRUE(identity_only.Validate().ok());

  ReformulatorOptions negative_void;
  negative_void.candidates.void_similarity = -0.5;
  EXPECT_TRUE(negative_void.Validate().IsInvalidArgument());

  ReformulatorOptions negative_transition;
  negative_transition.hmm.void_transition = -1.0;
  EXPECT_TRUE(negative_transition.Validate().IsInvalidArgument());
}

TEST_F(ReformulatorTest, ReformulateRejectsInvalidOptionsAtCallTime) {
  ReformulatorOptions no_states;
  no_states.candidates.per_term = 0;
  no_states.candidates.include_original = false;
  no_states.candidates.include_void = false;
  Reformulator r = Make(no_states);
  auto result = r.Reformulate(
      {corpus_.Title("uncertain"), corpus_.Title("query")}, 5);
  ASSERT_FALSE(result.ok());
}

TEST_F(ReformulatorTest, ToStringRendersTerms) {
  ReformulatedQuery q;
  q.terms = {corpus_.Title("uncertain"), kInvalidTermId};
  std::string s = q.ToString(corpus_.vocab);
  EXPECT_NE(s.find("uncertain"), std::string::npos);
  EXPECT_NE(s.find("∅"), std::string::npos);
}

}  // namespace
}  // namespace kqr
