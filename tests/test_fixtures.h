// Shared hand-built micro-corpus with fully known structure, used by the
// graph, walk, closeness, search and core tests.
//
// venues:  v0 "vldb", v1 "icdm"
// authors: a0 "alice smith", a1 "bob jones", a2 "carol wu"
// papers:
//   p0 "uncertain data query"            venue v0, by a0
//   p1 "probabilistic query processing"  venue v0, by a1
//   p2 "mining frequent pattern"         venue v1, by a2
//   p3 "uncertain mining"                venue v1, by a0 and a2
//
// Deliberate structure: "uncertain" and "probabilistic" never co-occur in
// a title but share venue v0 and the word "query" — the paper's motivating
// phenomenon in miniature.

#pragma once

#include <string>
#include <vector>

#include "common/logging.h"
#include "storage/database.h"
#include "text/analyzer.h"
#include "text/inverted_index.h"
#include "text/vocabulary.h"

namespace kqr {
namespace testing_fixtures {

inline Database MakeMicroDblp() {
  Database db("micro");
  auto venues_schema = Schema::Make(
      "venues",
      {Column("venue_id", ValueType::kInt64),
       Column("name", ValueType::kString, TextRole::kAtomic)},
      "venue_id");
  KQR_CHECK(venues_schema.ok());
  auto authors_schema = Schema::Make(
      "authors",
      {Column("author_id", ValueType::kInt64),
       Column("name", ValueType::kString, TextRole::kAtomic)},
      "author_id");
  KQR_CHECK(authors_schema.ok());
  auto papers_schema = Schema::Make(
      "papers",
      {Column("paper_id", ValueType::kInt64),
       Column("title", ValueType::kString, TextRole::kSegmented),
       Column("venue_id", ValueType::kInt64)},
      "paper_id", {ForeignKey{"venue_id", "venues"}});
  KQR_CHECK(papers_schema.ok());
  auto writes_schema = Schema::Make(
      "writes",
      {Column("write_id", ValueType::kInt64),
       Column("author_id", ValueType::kInt64),
       Column("paper_id", ValueType::kInt64)},
      "write_id",
      {ForeignKey{"author_id", "authors"},
       ForeignKey{"paper_id", "papers"}});
  KQR_CHECK(writes_schema.ok());

  Table* venues = *db.CreateTable(std::move(*venues_schema));
  Table* authors = *db.CreateTable(std::move(*authors_schema));
  Table* papers = *db.CreateTable(std::move(*papers_schema));
  Table* writes = *db.CreateTable(std::move(*writes_schema));

  KQR_CHECK(venues->Insert({Value(int64_t{0}), Value("vldb")}).ok());
  KQR_CHECK(venues->Insert({Value(int64_t{1}), Value("icdm")}).ok());

  KQR_CHECK(
      authors->Insert({Value(int64_t{0}), Value("alice smith")}).ok());
  KQR_CHECK(authors->Insert({Value(int64_t{1}), Value("bob jones")}).ok());
  KQR_CHECK(authors->Insert({Value(int64_t{2}), Value("carol wu")}).ok());

  KQR_CHECK(papers
                ->Insert({Value(int64_t{0}), Value("uncertain data query"),
                          Value(int64_t{0})})
                .ok());
  KQR_CHECK(papers
                ->Insert({Value(int64_t{1}),
                          Value("probabilistic query processing"),
                          Value(int64_t{0})})
                .ok());
  KQR_CHECK(papers
                ->Insert({Value(int64_t{2}),
                          Value("mining frequent pattern"),
                          Value(int64_t{1})})
                .ok());
  KQR_CHECK(papers
                ->Insert({Value(int64_t{3}), Value("uncertain mining"),
                          Value(int64_t{1})})
                .ok());

  int64_t w = 0;
  auto write = [&](int64_t author, int64_t paper) {
    KQR_CHECK(
        writes->Insert({Value(w++), Value(author), Value(paper)}).ok());
  };
  write(0, 0);
  write(1, 1);
  write(2, 2);
  write(0, 3);
  write(2, 3);

  KQR_CHECK_OK(db.ValidateIntegrity());
  return db;
}

/// Database + analyzer + vocabulary + inverted index bundle.
struct MicroCorpus {
  Database db;
  Analyzer analyzer;
  Vocabulary vocab;
  InvertedIndex index;

  static MicroCorpus Make() {
    Database db = MakeMicroDblp();
    Analyzer analyzer;
    Vocabulary vocab;
    auto index = InvertedIndex::Build(db, analyzer, &vocab);
    KQR_CHECK(index.ok());
    return MicroCorpus{std::move(db), std::move(analyzer),
                       std::move(vocab), std::move(*index)};
  }

  /// Stemmed title term id, e.g. Title("uncertain").
  TermId Title(const std::string& word) const {
    PorterStemmer stemmer;
    auto field = vocab.FindField("papers", "title");
    KQR_CHECK(field.has_value());
    auto id = vocab.Find(*field, stemmer.Stem(word));
    KQR_CHECK(id.has_value()) << "no title term for " << word;
    return *id;
  }

  TermId Author(const std::string& name) const {
    auto field = vocab.FindField("authors", "name");
    KQR_CHECK(field.has_value());
    auto id = vocab.Find(*field, name);
    KQR_CHECK(id.has_value()) << "no author term for " << name;
    return *id;
  }

  TermId Venue(const std::string& name) const {
    auto field = vocab.FindField("venues", "name");
    KQR_CHECK(field.has_value());
    auto id = vocab.Find(*field, name);
    KQR_CHECK(id.has_value()) << "no venue term for " << name;
    return *id;
  }
};

}  // namespace testing_fixtures
}  // namespace kqr

