// Unit tests for the intent-based judging logic (QueryIntent majority
// vote and its interaction with IsRelevant) on a corpus with known
// ground truth.

#include <gtest/gtest.h>

#include "common/logging.h"
#include "eval/experiment.h"
#include "eval/judge.h"

namespace kqr {
namespace {

class JudgeIntentTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DblpOptions dblp;
    dblp.num_authors = 200;
    dblp.num_papers = 800;
    dblp.num_venues = 24;
    auto ctx = MakeDblpContext(dblp);
    KQR_CHECK(ctx.ok());
    ctx_ = new ExperimentContext(std::move(*ctx));
  }
  static void TearDownTestSuite() {
    delete ctx_;
    ctx_ = nullptr;
  }

  TermId Title(const std::string& word) {
    auto terms = ctx_->model->ResolveQuery(word);
    KQR_CHECK(terms.ok()) << word;
    return (*terms)[0];
  }

  static ExperimentContext* ctx_;
};

ExperimentContext* JudgeIntentTest::ctx_ = nullptr;

TEST_F(JudgeIntentTest, IntentIsMajorityTopic) {
  TopicJudge judge(ctx_->corpus, *ctx_->model);
  // "twig" and "xpath" are unambiguous semistructured-topic words; the
  // majority topic must be theirs even with an ambiguous third term.
  std::vector<TermId> query = {Title("twig"), Title("xpath"),
                               Title("ranking")};
  auto intent = judge.QueryIntent(query);
  auto twig_topics = ctx_->corpus.TopicsOf("twig");
  ASSERT_EQ(twig_topics.size(), 1u);
  ASSERT_EQ(intent.size(), 1u);
  EXPECT_EQ(intent[0], twig_topics[0]);
}

TEST_F(JudgeIntentTest, IntentOfEmptyQueryEmpty) {
  TopicJudge judge(ctx_->corpus, *ctx_->model);
  EXPECT_TRUE(judge.QueryIntent({}).empty());
  EXPECT_TRUE(judge.QueryIntent({kInvalidTermId}).empty());
}

TEST_F(JudgeIntentTest, SubstituteInsideIntentIsRelevant) {
  TopicJudge judge(ctx_->corpus, *ctx_->model);
  std::vector<TermId> query = {Title("twig"), Title("xpath")};
  ReformulatedQuery suggestion;
  suggestion.terms = {Title("xquery"), Title("xpath")};
  EXPECT_TRUE(judge.IsRelevant(query, suggestion));
}

TEST_F(JudgeIntentTest, SubstituteOutsideIntentIsIrrelevant) {
  TopicJudge judge(ctx_->corpus, *ctx_->model);
  std::vector<TermId> query = {Title("twig"), Title("xpath")};
  // A mining-topic word is outside the semistructured intent.
  ReformulatedQuery suggestion;
  suggestion.terms = {Title("itemset"), Title("xpath")};
  EXPECT_FALSE(judge.IsRelevant(query, suggestion));
}

TEST_F(JudgeIntentTest, KeepingOriginalAlwaysAcceptable) {
  TopicJudge judge(ctx_->corpus, *ctx_->model);
  std::vector<TermId> query = {Title("twig"), Title("ranking")};
  // "ranking" is multi-topic; keeping it must not fail alignment even if
  // the intent resolves elsewhere.
  ReformulatedQuery suggestion;
  suggestion.terms = {Title("xpath"), Title("ranking")};
  JudgeOptions lax;
  lax.require_cohesion = false;
  TopicJudge lax_judge(ctx_->corpus, *ctx_->model, lax);
  EXPECT_TRUE(lax_judge.IsRelevant(query, suggestion));
}

TEST_F(JudgeIntentTest, GenericSubstituteIsIrrelevant) {
  TopicJudge judge(ctx_->corpus, *ctx_->model);
  std::vector<TermId> query = {Title("twig"), Title("xpath")};
  // Generic filler belongs to no topic — substituting it must fail.
  auto generic = ctx_->model->ResolveQuery("efficient");
  if (!generic.ok()) GTEST_SKIP() << "generic word not in corpus";
  ReformulatedQuery suggestion;
  suggestion.terms = {(*generic)[0], Title("xpath")};
  EXPECT_FALSE(judge.IsRelevant(query, suggestion));
}

TEST_F(JudgeIntentTest, PerPositionModeStillAvailable) {
  JudgeOptions options;
  options.use_query_intent = false;
  options.require_cohesion = false;
  TopicJudge judge(ctx_->corpus, *ctx_->model, options);
  std::vector<TermId> query = {Title("twig"), Title("itemset")};
  // Per-position: each substitute judged against its own slot.
  ReformulatedQuery ok_suggestion;
  ok_suggestion.terms = {Title("xpath"), Title("frequent")};
  EXPECT_TRUE(judge.IsRelevant(query, ok_suggestion));
  ReformulatedQuery crossed;
  crossed.terms = {Title("frequent"), Title("xpath")};
  EXPECT_FALSE(judge.IsRelevant(query, crossed));
}

TEST_F(JudgeIntentTest, MinAlignedFractionRelaxes) {
  JudgeOptions options;
  options.min_aligned_fraction = 0.5;
  options.require_cohesion = false;
  TopicJudge judge(ctx_->corpus, *ctx_->model, options);
  std::vector<TermId> query = {Title("twig"), Title("xpath")};
  ReformulatedQuery half_good;
  half_good.terms = {Title("xquery"), Title("itemset")};
  EXPECT_TRUE(judge.IsRelevant(query, half_good));
  JudgeOptions strict;
  strict.require_cohesion = false;
  TopicJudge strict_judge(ctx_->corpus, *ctx_->model, strict);
  EXPECT_FALSE(strict_judge.IsRelevant(query, half_good));
}

}  // namespace
}  // namespace kqr
