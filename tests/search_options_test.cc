// Tests of the search-quality options (root-degree cap, hub-skip BFS) and
// the Def. 3 tree counting that back the Table III metric and the judge's
// strict cohesion check.

#include <gtest/gtest.h>

#include "graph/tat_builder.h"
#include "search/keyword_search.h"
#include "test_fixtures.h"

namespace kqr {
namespace {

using testing_fixtures::MicroCorpus;

class SearchOptionsTest : public ::testing::Test {
 protected:
  SearchOptionsTest() : corpus_(MicroCorpus::Make()) {
    auto graph =
        BuildTatGraph(corpus_.db, corpus_.vocab, corpus_.index,
                      TatBuilderOptions{.max_doc_frequency_fraction = 1.0});
    KQR_CHECK(graph.ok());
    graph_ = std::make_unique<TatGraph>(std::move(*graph));
  }

  KeywordQuery QueryOf(std::vector<TermId> terms) {
    KeywordQuery q;
    for (TermId t : terms) {
      q.keywords.push_back(QueryKeyword{std::string(corpus_.vocab.text(t)), {t}});
    }
    return q;
  }

  MicroCorpus corpus_;
  std::unique_ptr<TatGraph> graph_;
};

TEST_F(SearchOptionsTest, RootDegreeCapFiltersHubRoots) {
  KeywordQuery q = QueryOf(
      {corpus_.Title("uncertain"), corpus_.Title("probabilistic")});
  SearchOptions open;
  size_t unrestricted =
      KeywordSearch(*graph_, corpus_.index, open).CountResults(q);
  SearchOptions capped;
  capped.max_root_degree = 1;  // every tuple in the fixture exceeds this
  size_t restricted =
      KeywordSearch(*graph_, corpus_.index, capped).CountResults(q);
  EXPECT_GT(unrestricted, 0u);
  EXPECT_EQ(restricted, 0u);
}

TEST_F(SearchOptionsTest, HubSkipBlocksTunnelling) {
  // uncertain (p0,p3) and probabilistic (p1) connect only through
  // venue v0 or shared terms; on the tuple graph the venue is the bridge.
  KeywordQuery q = QueryOf(
      {corpus_.Title("uncertain"), corpus_.Title("probabilistic")});
  SearchOptions open;
  open.max_radius = 3;
  EXPECT_GT(KeywordSearch(*graph_, corpus_.index, open).CountResults(q),
            0u);
  SearchOptions blocked = open;
  // Venue v0 has degree 3 (p0, p1 + name term): neither tunnel through
  // hubs nor let them root results.
  blocked.max_expand_degree = 2;
  blocked.max_root_degree = 2;
  EXPECT_EQ(
      KeywordSearch(*graph_, corpus_.index, blocked).CountResults(q),
      0u);
}

TEST_F(SearchOptionsTest, HubStillReachableAsEndpoint) {
  // The venue itself can still be reached (it just cannot be traversed
  // through): a query matching the venue name and a title word of one of
  // its papers connects.
  KeywordQuery q =
      QueryOf({corpus_.Venue("vldb"), corpus_.Title("uncertain")});
  SearchOptions blocked;
  blocked.max_expand_degree = 2;
  EXPECT_GT(
      KeywordSearch(*graph_, corpus_.index, blocked).CountResults(q),
      0u);
}

TEST_F(SearchOptionsTest, CountTreesSingleKeyword) {
  KeywordSearch search(*graph_, corpus_.index);
  // Trees for one keyword = reachable roots weighted by origin counts ≥
  // plain root count.
  KeywordQuery q = QueryOf({corpus_.Title("uncertain")});
  EXPECT_GE(search.CountTrees(q), search.CountResults(q));
}

TEST_F(SearchOptionsTest, CountTreesMultipliesLeafChoices) {
  // "query" appears in p0 and p1, both share venue v0 and the root v0
  // reaches both: a ("query","query-ish") style pair multiplies.
  // Here: uncertain (p0,p3) and mining (p2,p3): root p3 holds both
  // (1×1), root a0 (alice: p0,p3) reaches uncertain{p0,p3} and
  // mining{p3} → 2×1 trees, etc. Total must exceed the root count.
  KeywordQuery q =
      QueryOf({corpus_.Title("uncertain"), corpus_.Title("mining")});
  KeywordSearch search(*graph_, corpus_.index);
  EXPECT_GT(search.CountTrees(q), search.CountResults(q));
}

TEST_F(SearchOptionsTest, CountTreesZeroForUnconnected) {
  KeywordQuery q = QueryOf({corpus_.Title("uncertain")});
  q.keywords.push_back(QueryKeyword{"ghost", {}});
  KeywordSearch search(*graph_, corpus_.index);
  EXPECT_EQ(search.CountTrees(q), 0u);
  EXPECT_EQ(search.CountTrees(KeywordQuery{}), 0u);
}

TEST_F(SearchOptionsTest, CountTreesRespectsRootCap) {
  KeywordQuery q = QueryOf(
      {corpus_.Title("uncertain"), corpus_.Title("probabilistic")});
  SearchOptions open;
  SearchOptions capped;
  capped.max_root_degree = 1;
  EXPECT_GT(KeywordSearch(*graph_, corpus_.index, open).CountTrees(q),
            0u);
  EXPECT_EQ(KeywordSearch(*graph_, corpus_.index, capped).CountTrees(q),
            0u);
}

}  // namespace
}  // namespace kqr
