#include "common/string_util.h"

#include <gtest/gtest.h>

namespace kqr {
namespace {

TEST(StringUtil, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("Hello World"), "hello world");
  EXPECT_EQ(ToLowerAscii("ABC123xyz"), "abc123xyz");
  EXPECT_EQ(ToLowerAscii(""), "");
}

TEST(StringUtil, SplitKeepsEmptyFields) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtil, SplitSingleField) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtil, SplitEmptyString) {
  auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringUtil, SplitWhitespaceDropsEmpty) {
  auto parts = SplitWhitespace("  foo \t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[1], "bar");
  EXPECT_EQ(parts[2], "baz");
}

TEST(StringUtil, SplitWhitespaceAllBlank) {
  EXPECT_TRUE(SplitWhitespace("   \t\n ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(StringUtil, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("\ta b\n"), "a b");
}

TEST(StringUtil, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
}

TEST(StringUtil, IsAlnumAscii) {
  EXPECT_TRUE(IsAlnumAscii("abc123"));
  EXPECT_FALSE(IsAlnumAscii("abc 123"));
  EXPECT_FALSE(IsAlnumAscii("abc-123"));
  EXPECT_FALSE(IsAlnumAscii(""));
}

}  // namespace
}  // namespace kqr
