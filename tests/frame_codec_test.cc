// Property and corruption tests for the wire frame codec (net/frame.h)
// and the message encodings layered on it (net/protocol.h).
//
// The framing contract under test:
//   - round-trip: every (type, payload) encodes to bytes that decode back
//     bit-identically, regardless of how the bytes are chunked on arrival;
//   - truncation at EVERY byte boundary is "need more bytes", never a
//     frame and never corruption;
//   - a single flipped bit anywhere in an encoded frame is NEVER returned
//     as the original frame: it is either detected (kCorruption) or it
//     changes what the decoder yields;
//   - corruption is sticky: once a stream fails validation, no later
//     bytes — even a pristine frame — are trusted.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/io/codec.h"
#include "net/frame.h"
#include "net/protocol.h"

namespace kqr {
namespace {

std::span<const std::byte> AsBytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

std::string RandomPayload(std::mt19937_64* rng, size_t size) {
  std::string payload(size, '\0');
  std::uniform_int_distribution<int> byte(0, 255);
  for (char& c : payload) c = static_cast<char>(byte(*rng));
  return payload;
}

// Feeds `wire` into a fresh buffer all at once and pulls one frame.
Result<std::optional<Frame>> DecodeOne(const std::string& wire) {
  FrameBuffer buffer;
  buffer.Append(wire);
  return buffer.Next();
}

TEST(FrameCodec, RoundTripsEveryTypeAndPayloadShape) {
  std::mt19937_64 rng(0x46524d45);
  const size_t sizes[] = {0, 1, 2, 7, 8, 9, 63, 64, 65, 1024, 70000};
  for (uint8_t type_byte = 1; type_byte <= 8; ++type_byte) {
    for (size_t size : sizes) {
      const auto type = static_cast<FrameType>(type_byte);
      const std::string payload = RandomPayload(&rng, size);
      const std::string wire = EncodeFrameString(type, payload);
      ASSERT_EQ(wire.size(), kFrameHeaderBytes + size);

      auto frame = DecodeOne(wire);
      ASSERT_TRUE(frame.ok()) << frame.status().ToString();
      ASSERT_TRUE(frame->has_value());
      EXPECT_EQ((*frame)->type, type);
      EXPECT_EQ((*frame)->payload, payload);
    }
  }
}

TEST(FrameCodec, RoundTripsUnderRandomChunking) {
  std::mt19937_64 rng(0x4348554e);
  // Several frames back to back, delivered in random-size chunks — the
  // decoder must produce exactly the original sequence no matter where
  // the chunk boundaries fall.
  std::vector<Frame> expect;
  std::string wire;
  for (int i = 0; i < 16; ++i) {
    Frame f;
    f.type = static_cast<FrameType>(1 + (i % 8));
    f.payload = RandomPayload(&rng, static_cast<size_t>(i) * 37 % 300);
    EncodeFrame(f.type, f.payload, &wire);
    expect.push_back(std::move(f));
  }

  for (int round = 0; round < 8; ++round) {
    FrameBuffer buffer;
    std::vector<Frame> got;
    size_t pos = 0;
    std::uniform_int_distribution<size_t> chunk(1, 97);
    while (pos < wire.size()) {
      const size_t n = std::min(chunk(rng), wire.size() - pos);
      buffer.Append(std::string_view(wire).substr(pos, n));
      pos += n;
      for (;;) {
        auto frame = buffer.Next();
        ASSERT_TRUE(frame.ok()) << frame.status().ToString();
        if (!frame->has_value()) break;
        got.push_back(std::move(**frame));
      }
    }
    ASSERT_EQ(got.size(), expect.size());
    for (size_t i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(got[i].type, expect[i].type);
      EXPECT_EQ(got[i].payload, expect[i].payload);
    }
    EXPECT_EQ(buffer.buffered(), 0u);
  }
}

TEST(FrameCodec, TruncationAtEveryBoundaryNeedsMoreBytes) {
  std::mt19937_64 rng(0x54525543);
  const std::string wire =
      EncodeFrameString(FrameType::kStatsResponse, RandomPayload(&rng, 61));
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    FrameBuffer buffer;
    buffer.Append(std::string_view(wire).substr(0, cut));
    auto frame = buffer.Next();
    ASSERT_TRUE(frame.ok())
        << "prefix of " << cut << " bytes: " << frame.status().ToString();
    EXPECT_FALSE(frame->has_value()) << "prefix of " << cut << " bytes";

    // The remainder completes the frame: truncation loses nothing.
    buffer.Append(std::string_view(wire).substr(cut));
    auto completed = buffer.Next();
    ASSERT_TRUE(completed.ok()) << completed.status().ToString();
    ASSERT_TRUE(completed->has_value());
    EXPECT_EQ((*completed)->type, FrameType::kStatsResponse);
  }
}

TEST(FrameCodec, EveryFlippedBitIsDetectedOrChangesTheFrame) {
  std::mt19937_64 rng(0x464c4950);
  const std::string payload = RandomPayload(&rng, 53);
  const std::string wire =
      EncodeFrameString(FrameType::kReformulateResponse, payload);

  for (size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = wire;
      flipped[byte] = static_cast<char>(
          static_cast<uint8_t>(flipped[byte]) ^ (uint8_t{1} << bit));
      auto frame = DecodeOne(flipped);
      // A flip may be caught (corruption), may leave the decoder waiting
      // for bytes a larger length field promises, or may yield a frame —
      // but never the original frame presented as intact.
      if (frame.ok() && frame->has_value()) {
        const bool same =
            (*frame)->type == FrameType::kReformulateResponse &&
            (*frame)->payload == payload;
        EXPECT_FALSE(same) << "undetected flip at byte " << byte << " bit "
                           << bit;
      } else if (!frame.ok()) {
        EXPECT_EQ(frame.status().code(), StatusCode::kCorruption);
      }
    }
  }
}

TEST(FrameCodec, PayloadBitFlipsAreAlwaysCorruption) {
  // Inside the payload the checksum leaves no wiggle room at all: every
  // flip must surface as kCorruption, not as a different valid frame.
  std::mt19937_64 rng(0x50594c44);
  const std::string payload = RandomPayload(&rng, 29);
  const std::string wire = EncodeFrameString(FrameType::kHealthRequest, payload);
  for (size_t byte = kFrameHeaderBytes; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = wire;
      flipped[byte] = static_cast<char>(
          static_cast<uint8_t>(flipped[byte]) ^ (uint8_t{1} << bit));
      auto frame = DecodeOne(flipped);
      ASSERT_FALSE(frame.ok()) << "byte " << byte << " bit " << bit;
      EXPECT_EQ(frame.status().code(), StatusCode::kCorruption);
    }
  }
}

TEST(FrameCodec, CorruptionIsSticky) {
  FrameBuffer buffer;
  std::string bad = EncodeFrameString(FrameType::kHealthRequest, "x");
  bad[0] = '\0';  // break the magic
  buffer.Append(bad);
  auto first = buffer.Next();
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kCorruption);

  // A pristine frame appended after the fact must not resurrect the
  // stream: the decoder lost framing and every later byte is suspect.
  buffer.Append(EncodeFrameString(FrameType::kHealthRequest, "y"));
  auto second = buffer.Next();
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kCorruption);
}

TEST(FrameCodec, RejectsOversizedPayloadFromHeaderAlone) {
  // Craft a header whose length field exceeds the bound; the decoder must
  // reject it before waiting for (or allocating) the promised bytes.
  std::string wire;
  PutU32Le(&wire, kFrameMagic);
  wire.push_back(static_cast<char>(kFrameVersion));
  wire.push_back(static_cast<char>(FrameType::kStatsRequest));
  wire.push_back('\0');
  wire.push_back('\0');
  PutU32Le(&wire, static_cast<uint32_t>(kMaxFramePayload + 1));
  PutU64Le(&wire, 0);
  auto frame = DecodeOne(wire);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kCorruption);

  // A tighter per-connection bound rejects frames the global bound allows.
  FrameBuffer small(/*max_payload=*/16);
  small.Append(EncodeFrameString(FrameType::kStatsRequest, std::string(17, 'a')));
  auto over = small.Next();
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), StatusCode::kCorruption);
}

TEST(FrameCodec, RejectsUnknownTypeVersionAndReservedBytes) {
  const std::string payload = "payload";
  {
    std::string wire = EncodeFrameString(FrameType::kSwapResponse, payload);
    wire[5] = '\x2a';  // type 42: not a known FrameType
    auto frame = DecodeOne(wire);
    ASSERT_FALSE(frame.ok());
    EXPECT_EQ(frame.status().code(), StatusCode::kCorruption);
  }
  {
    std::string wire = EncodeFrameString(FrameType::kSwapResponse, payload);
    wire[4] = '\x02';  // future version
    auto frame = DecodeOne(wire);
    ASSERT_FALSE(frame.ok());
    EXPECT_EQ(frame.status().code(), StatusCode::kCorruption);
  }
  {
    std::string wire = EncodeFrameString(FrameType::kSwapResponse, payload);
    wire[7] = '\x01';  // reserved bytes must be zero
    auto frame = DecodeOne(wire);
    ASSERT_FALSE(frame.ok());
    EXPECT_EQ(frame.status().code(), StatusCode::kCorruption);
  }
}

TEST(FrameCodec, ReclaimsConsumedBytesOnLongStreams) {
  // Parse far more frame bytes than the reclaim threshold; the buffer
  // must not retain every frame it ever decoded.
  FrameBuffer buffer;
  const std::string wire =
      EncodeFrameString(FrameType::kHealthRequest, std::string(1000, 'h'));
  for (int i = 0; i < 64; ++i) {
    buffer.Append(wire);
    auto frame = buffer.Next();
    ASSERT_TRUE(frame.ok());
    ASSERT_TRUE(frame->has_value());
    EXPECT_EQ(buffer.buffered(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Message encodings (net/protocol.h) over decoded payloads.

ReformulatedQuery MakeQuery(std::initializer_list<TermId> terms, double score,
                            bool identity) {
  ReformulatedQuery q;
  q.terms = terms;
  q.score = score;
  q.is_identity = identity;
  return q;
}

TEST(ProtocolCodec, ReformulateRequestRoundTrips) {
  ReformulateRequest request;
  request.request_id = 0x1234567890abcdefULL;
  request.k = 25;
  request.deadline_micros = 1500000;
  request.queries = {{1, 2, 3}, {}, {42}};
  const std::string payload = EncodeReformulateRequest(request);

  auto decoded = DecodeReformulateRequest(AsBytes(payload));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->request_id, request.request_id);
  EXPECT_EQ(decoded->k, request.k);
  EXPECT_EQ(decoded->deadline_micros, request.deadline_micros);
  EXPECT_EQ(decoded->queries, request.queries);
}

TEST(ProtocolCodec, ReformulateResponseRoundTripsMixedResults) {
  ReformulateResponse response;
  response.request_id = 77;
  response.results.emplace_back(std::vector<ReformulatedQuery>{
      MakeQuery({5, 9}, 0.125, true), MakeQuery({5, 11}, -3.5e-7, false)});
  response.results.emplace_back(Status::DeadlineExceeded("too slow"));
  response.results.emplace_back(std::vector<ReformulatedQuery>{});
  response.results.emplace_back(Status::Unavailable("shard down"));
  const std::string payload = EncodeReformulateResponse(response);

  auto decoded = DecodeReformulateResponse(AsBytes(payload));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->results.size(), 4u);
  ASSERT_TRUE(decoded->results[0].ok());
  ASSERT_EQ(decoded->results[0]->size(), 2u);
  EXPECT_EQ((*decoded->results[0])[0].terms, (std::vector<TermId>{5, 9}));
  // Scores travel as raw bits: equality must be exact, not approximate.
  EXPECT_EQ((*decoded->results[0])[0].score, 0.125);
  EXPECT_TRUE((*decoded->results[0])[0].is_identity);
  EXPECT_EQ((*decoded->results[0])[1].score, -3.5e-7);
  EXPECT_FALSE((*decoded->results[0])[1].is_identity);
  EXPECT_EQ(decoded->results[1].status().code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(decoded->results[1].status().message(), "too slow");
  ASSERT_TRUE(decoded->results[2].ok());
  EXPECT_TRUE(decoded->results[2]->empty());
  EXPECT_EQ(decoded->results[3].status().code(), StatusCode::kUnavailable);
}

TEST(ProtocolCodec, EveryStrictPrefixOfAResponseFailsToDecode) {
  ReformulateResponse response;
  response.request_id = 9;
  response.results.emplace_back(std::vector<ReformulatedQuery>{
      MakeQuery({1, 2, 3}, 0.5, false)});
  response.results.emplace_back(Status::NotFound("gone"));
  const std::string payload = EncodeReformulateResponse(response);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    const std::string prefix = payload.substr(0, cut);
    auto decoded = DecodeReformulateResponse(AsBytes(prefix));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << cut << " bytes decoded";
  }
  // Trailing garbage is rejected too (ExpectDone).
  auto padded = DecodeReformulateResponse(AsBytes(payload + "!"));
  EXPECT_FALSE(padded.ok());
}

TEST(ProtocolCodec, RejectsHostileCountsAndCodes) {
  {
    // Element count far beyond what the payload could hold must be
    // rejected before any allocation, not trusted into a reserve().
    std::string payload;
    PutVarint64(&payload, 1);                     // request_id
    PutVarint64(&payload, 10);                    // k
    PutVarint64(&payload, 0);                     // deadline
    PutVarint64(&payload, uint64_t{1} << 60);     // query count: absurd
    auto decoded = DecodeReformulateRequest(AsBytes(payload));
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
  }
  {
    // Unknown status code on the wire.
    std::string payload;
    PutVarint64(&payload, 1);    // request_id
    PutVarint64(&payload, 1);    // one result
    PutVarint64(&payload, 99);   // status code 99: not a StatusCode
    PutVarint64(&payload, 0);    // empty message
    auto decoded = DecodeReformulateResponse(AsBytes(payload));
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
  }
  {
    // An OK status carrying a message would decode to a Status that is
    // not OK (rep allocated) — the wire form forbids it outright.
    std::string payload;
    PutVarint64(&payload, 1);  // request_id
    PutVarint64(&payload, 1);  // one result
    PutVarint64(&payload, 0);  // kOk
    PutVarint64(&payload, 3);
    payload.append("huh");
    auto decoded = DecodeReformulateResponse(AsBytes(payload));
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
  }
}

TEST(ProtocolCodec, SideChannelMessagesRoundTrip) {
  {
    const std::string payload = EncodeRequestIdPayload(314159);
    auto id = DecodeRequestIdPayload(AsBytes(payload));
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id, 314159u);
  }
  {
    HealthResponse health;
    health.request_id = 8;
    health.model_generation = 3;
    health.vocab_terms = 1533;
    health.prepared_terms = 12;
    auto decoded = DecodeHealthResponse(AsBytes(EncodeHealthResponse(health)));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->model_generation, 3u);
    EXPECT_EQ(decoded->vocab_terms, 1533u);
    EXPECT_EQ(decoded->prepared_terms, 12u);
  }
  {
    StatsResponse stats;
    stats.request_id = 5;
    stats.json = R"({"shard":{"counters":{}}})";
    auto decoded = DecodeStatsResponse(AsBytes(EncodeStatsResponse(stats)));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->json, stats.json);
  }
  {
    SwapRequest swap;
    swap.request_id = 6;
    swap.model_path = "/tmp/model.kqr3";
    auto decoded = DecodeSwapRequest(AsBytes(EncodeSwapRequest(swap)));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->model_path, swap.model_path);
  }
  {
    SwapResponse swap;
    swap.request_id = 7;
    swap.status = Status::IOError("no such model");
    swap.model_generation = 2;
    auto decoded = DecodeSwapResponse(AsBytes(EncodeSwapResponse(swap)));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->status.code(), StatusCode::kIOError);
    EXPECT_EQ(decoded->status.message(), "no such model");
    EXPECT_EQ(decoded->model_generation, 2u);
  }
}

}  // namespace
}  // namespace kqr
