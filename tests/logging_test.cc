#include "common/logging.h"

#include <gtest/gtest.h>

#include "common/status.h"
#include "common/timer.h"

namespace kqr {
namespace {

TEST(Logging, LevelRoundTrip) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(before);
}

TEST(Logging, SuppressedLevelsDoNotCrash) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  KQR_LOG(Debug) << "below threshold " << 42;
  KQR_LOG(Info) << "also below threshold";
  SetLogLevel(before);
}

TEST(Logging, CheckPassesOnTrue) {
  KQR_CHECK(1 + 1 == 2) << "never printed";
  KQR_CHECK_OK(Status::OK());
}

TEST(Logging, CheckAbortsOnFalse) {
  EXPECT_DEATH({ KQR_CHECK(false) << "boom"; }, "Check failed");
}

TEST(Logging, CheckOkAbortsOnError) {
  EXPECT_DEATH({ KQR_CHECK_OK(Status::Internal("bad")); }, "Internal");
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  // Burn a bit of CPU deterministically.
  volatile double x = 1.0;
  for (int i = 0; i < 100000; ++i) x = x * 1.0000001;
  double first = t.ElapsedSeconds();
  EXPECT_GT(first, 0.0);
  EXPECT_GE(t.ElapsedSeconds(), first);
  EXPECT_NEAR(t.ElapsedMillis(), t.ElapsedSeconds() * 1e3,
              t.ElapsedSeconds() * 1e3);  // loose self-consistency
}

TEST(Timer, ResetRestarts) {
  Timer t;
  volatile double x = 1.0;
  for (int i = 0; i < 100000; ++i) x = x * 1.0000001;
  double before = t.ElapsedSeconds();
  t.Reset();
  EXPECT_LT(t.ElapsedSeconds(), before + 1.0);  // sanity
}

}  // namespace
}  // namespace kqr
