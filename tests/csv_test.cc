#include "storage/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace kqr {
namespace {

Schema TestSchema() {
  return std::move(Schema::Make("t",
                                {Column("id", ValueType::kInt64),
                                 Column("name", ValueType::kString),
                                 Column("score", ValueType::kDouble)},
                                "id"))
      .ValueOrDie();
}

TEST(CsvParse, PlainFields) {
  auto f = ParseCsvLine("a,b,c");
  ASSERT_TRUE(f.ok());
  ASSERT_EQ(f->size(), 3u);
  EXPECT_EQ((*f)[0], "a");
  EXPECT_EQ((*f)[2], "c");
}

TEST(CsvParse, EmptyFields) {
  auto f = ParseCsvLine(",,");
  ASSERT_TRUE(f.ok());
  ASSERT_EQ(f->size(), 3u);
  for (const auto& s : *f) EXPECT_EQ(s, "");
}

TEST(CsvParse, QuotedFieldWithComma) {
  auto f = ParseCsvLine("1,\"hello, world\",2");
  ASSERT_TRUE(f.ok());
  ASSERT_EQ(f->size(), 3u);
  EXPECT_EQ((*f)[1], "hello, world");
}

TEST(CsvParse, EscapedQuote) {
  auto f = ParseCsvLine("\"she said \"\"hi\"\"\"");
  ASSERT_TRUE(f.ok());
  ASSERT_EQ(f->size(), 1u);
  EXPECT_EQ((*f)[0], "she said \"hi\"");
}

TEST(CsvParse, TrailingCrStripped) {
  auto f = ParseCsvLine("a,b\r");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)[1], "b");
}

TEST(CsvParse, RejectsUnterminatedQuote) {
  EXPECT_TRUE(ParseCsvLine("\"oops").status().IsCorruption());
}

TEST(CsvParse, RejectsQuoteMidField) {
  EXPECT_TRUE(ParseCsvLine("ab\"cd\"").status().IsCorruption());
}

TEST(CsvFormat, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(FormatCsvLine({"a", "b"}), "a,b");
  EXPECT_EQ(FormatCsvLine({"a,b"}), "\"a,b\"");
  EXPECT_EQ(FormatCsvLine({"say \"hi\""}), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(FormatCsvLine({"line\nbreak"}), "\"line\nbreak\"");
}

TEST(CsvFormat, RoundTripsThroughParse) {
  std::vector<std::string> fields = {"plain", "with,comma", "with\"quote",
                                     ""};
  auto parsed = ParseCsvLine(FormatCsvLine(fields));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, fields);
}

TEST(CsvLoad, LoadsTypedRows) {
  Table t(TestSchema());
  std::istringstream in("id,name,score\n1,alice,2.5\n2,bob,3.25\n");
  ASSERT_TRUE(LoadCsvInto(in, &t).ok());
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.row(0).at(1).AsString(), "alice");
  EXPECT_DOUBLE_EQ(t.row(1).at(2).AsDouble(), 3.25);
}

TEST(CsvLoad, EmptyCellsBecomeNull) {
  Table t(TestSchema());
  std::istringstream in("id,name,score\n1,,\n");
  ASSERT_TRUE(LoadCsvInto(in, &t).ok());
  EXPECT_TRUE(t.row(0).at(1).is_null());
  EXPECT_TRUE(t.row(0).at(2).is_null());
}

TEST(CsvLoad, SkipsBlankLines) {
  Table t(TestSchema());
  std::istringstream in("id,name,score\n1,a,1.0\n\n2,b,2.0\n");
  ASSERT_TRUE(LoadCsvInto(in, &t).ok());
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(CsvLoad, RejectsMissingHeader) {
  Table t(TestSchema());
  std::istringstream in("");
  EXPECT_TRUE(LoadCsvInto(in, &t).IsCorruption());
}

TEST(CsvLoad, RejectsWrongHeader) {
  Table t(TestSchema());
  std::istringstream in("id,wrong,score\n");
  EXPECT_TRUE(LoadCsvInto(in, &t).IsCorruption());
}

TEST(CsvLoad, RejectsArityMismatch) {
  Table t(TestSchema());
  std::istringstream in("id,name,score\n1,a\n");
  EXPECT_TRUE(LoadCsvInto(in, &t).IsCorruption());
}

TEST(CsvLoad, RejectsBadInt) {
  Table t(TestSchema());
  std::istringstream in("id,name,score\nxyz,a,1.0\n");
  EXPECT_TRUE(LoadCsvInto(in, &t).IsCorruption());
}

TEST(CsvLoad, RejectsBadDouble) {
  Table t(TestSchema());
  std::istringstream in("id,name,score\n1,a,notnum\n");
  EXPECT_TRUE(LoadCsvInto(in, &t).IsCorruption());
}

TEST(CsvDump, RoundTripsTable) {
  Table t(TestSchema());
  ASSERT_TRUE(t.Insert({Value(int64_t{1}), Value("a,b"), Value(1.5)}).ok());
  ASSERT_TRUE(
      t.Insert({Value(int64_t{2}), Value::Null(), Value(2.5)}).ok());
  std::ostringstream out;
  ASSERT_TRUE(DumpCsv(t, out).ok());

  Table t2(TestSchema());
  std::istringstream in(out.str());
  ASSERT_TRUE(LoadCsvInto(in, &t2).ok());
  ASSERT_EQ(t2.num_rows(), 2u);
  EXPECT_EQ(t2.row(0).at(1).AsString(), "a,b");
  EXPECT_TRUE(t2.row(1).at(1).is_null());
}

TEST(CsvFile, MissingFileIsIOError) {
  Table t(TestSchema());
  EXPECT_TRUE(LoadCsvFileInto("/nonexistent/path.csv", &t).IsIOError());
}

}  // namespace
}  // namespace kqr
