#include "datagen/dblp_gen.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "datagen/ecommerce_gen.h"

namespace kqr {
namespace {

DblpOptions SmallOptions() {
  DblpOptions o;
  o.num_authors = 80;
  o.num_papers = 200;
  o.num_venues = 24;
  o.seed = 7;
  return o;
}

TEST(DblpGen, SchemaShape) {
  auto corpus = GenerateDblp(SmallOptions());
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
  const Database& db = corpus->db;
  ASSERT_NE(db.FindTable("venues"), nullptr);
  ASSERT_NE(db.FindTable("authors"), nullptr);
  ASSERT_NE(db.FindTable("papers"), nullptr);
  ASSERT_NE(db.FindTable("writes"), nullptr);
  EXPECT_EQ(db.FindTable("venues")->num_rows(), 24u);
  EXPECT_EQ(db.FindTable("authors")->num_rows(), 80u);
  EXPECT_EQ(db.FindTable("papers")->num_rows(), 200u);
  EXPECT_GE(db.FindTable("writes")->num_rows(), 200u);  // ≥1 author/paper
}

TEST(DblpGen, ReferentialIntegrityHolds) {
  auto corpus = GenerateDblp(SmallOptions());
  ASSERT_TRUE(corpus.ok());
  EXPECT_TRUE(corpus->db.ValidateIntegrity().ok());
}

TEST(DblpGen, DeterministicForSeed) {
  auto a = GenerateDblp(SmallOptions());
  auto b = GenerateDblp(SmallOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const Table* pa = a->db.FindTable("papers");
  const Table* pb = b->db.FindTable("papers");
  ASSERT_EQ(pa->num_rows(), pb->num_rows());
  for (size_t r = 0; r < pa->num_rows(); ++r) {
    EXPECT_EQ(pa->row(static_cast<RowIndex>(r)),
              pb->row(static_cast<RowIndex>(r)));
  }
}

TEST(DblpGen, DifferentSeedsDiffer) {
  DblpOptions other = SmallOptions();
  other.seed = 8;
  auto a = GenerateDblp(SmallOptions());
  auto b = GenerateDblp(other);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  bool differs = false;
  const Table* pa = a->db.FindTable("papers");
  const Table* pb = b->db.FindTable("papers");
  for (size_t r = 0; r < pa->num_rows() && !differs; ++r) {
    if (!(pa->row(static_cast<RowIndex>(r)) ==
          pb->row(static_cast<RowIndex>(r)))) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(DblpGen, GroundTruthSizesMatch) {
  auto corpus = GenerateDblp(SmallOptions());
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus->author_topics.size(), 80u);
  EXPECT_EQ(corpus->venue_topic.size(), 24u);
  EXPECT_EQ(corpus->paper_topic.size(), 200u);
  EXPECT_EQ(corpus->paper_subtopic.size(), 200u);
  EXPECT_EQ(corpus->author_names.size(), 80u);
  EXPECT_EQ(corpus->venue_names.size(), 24u);
}

TEST(DblpGen, AuthorNamesUnique) {
  auto corpus = GenerateDblp(SmallOptions());
  ASSERT_TRUE(corpus.ok());
  std::set<std::string> names(corpus->author_names.begin(),
                              corpus->author_names.end());
  EXPECT_EQ(names.size(), corpus->author_names.size());
}

TEST(DblpGen, EveryTopicHasVenues) {
  auto corpus = GenerateDblp(SmallOptions());
  ASSERT_TRUE(corpus.ok());
  std::set<size_t> covered(corpus->venue_topic.begin(),
                           corpus->venue_topic.end());
  EXPECT_EQ(covered.size(), corpus->topics->num_topics());
}

TEST(DblpGen, PapersMostlyInTopicVenues) {
  auto corpus = GenerateDblp(SmallOptions());
  ASSERT_TRUE(corpus.ok());
  const Table* papers = corpus->db.FindTable("papers");
  size_t venue_col = *papers->schema().FindColumn("venue_id");
  size_t matches = 0;
  for (size_t p = 0; p < papers->num_rows(); ++p) {
    int64_t venue =
        papers->row(static_cast<RowIndex>(p)).at(venue_col).AsInt64();
    if (corpus->venue_topic[venue] == corpus->paper_topic[p]) ++matches;
  }
  // venue_noise is 5%; allow slack.
  EXPECT_GT(matches, papers->num_rows() * 8 / 10);
}

TEST(DblpGen, TitleWordsMostlyFromPaperTopic) {
  auto corpus = GenerateDblp(SmallOptions());
  ASSERT_TRUE(corpus.ok());
  const Table* papers = corpus->db.FindTable("papers");
  size_t title_col = *papers->schema().FindColumn("title");
  size_t in_topic = 0, total = 0;
  for (size_t p = 0; p < papers->num_rows(); ++p) {
    const std::string& title =
        papers->row(static_cast<RowIndex>(p)).at(title_col).AsString();
    size_t topic = corpus->paper_topic[p];
    std::string word;
    for (char c : title + " ") {
      if (c == ' ') {
        if (!word.empty()) {
          auto topics = corpus->topics->TopicsOfWord(word);
          ++total;
          if (std::find(topics.begin(), topics.end(), topic) !=
              topics.end()) {
            ++in_topic;
          }
          word.clear();
        }
      } else {
        word.push_back(c);
      }
    }
  }
  ASSERT_GT(total, 0u);
  // ~30% of slots are topic-free generic filler and ~8% cross-topic
  // noise; the remainder must come from the paper's own topic.
  EXPECT_GT(static_cast<double>(in_topic) / total, 0.55);
}

TEST(DblpGen, GenericFillerPresent) {
  auto corpus = GenerateDblp(SmallOptions());
  ASSERT_TRUE(corpus.ok());
  const Table* papers = corpus->db.FindTable("papers");
  size_t title_col = *papers->schema().FindColumn("title");
  size_t generic = 0;
  const auto& generics = GenericTitleWords();
  for (size_t p = 0; p < papers->num_rows(); ++p) {
    const std::string& title =
        papers->row(static_cast<RowIndex>(p)).at(title_col).AsString();
    for (const std::string& g : generics) {
      if (title.find(g) != std::string::npos) {
        ++generic;
        break;
      }
    }
  }
  // With a 30% per-slot rate nearly every title holds some filler.
  EXPECT_GT(generic, papers->num_rows() / 2);
  // Generic words belong to no topic — that is their defining property.
  EXPECT_TRUE(corpus->TopicsOf(generics.front()).empty());
}

TEST(DblpGen, TopicsOfResolvesAllSurfaceKinds) {
  auto corpus = GenerateDblp(SmallOptions());
  ASSERT_TRUE(corpus.ok());
  // Author name (case-insensitive).
  EXPECT_EQ(corpus->TopicsOf(corpus->author_names[0]),
            corpus->author_topics[0]);
  // Venue name.
  EXPECT_EQ(corpus->TopicsOf(corpus->venue_names[3]),
            std::vector<size_t>{corpus->venue_topic[3]});
  // Title word and its stem.
  EXPECT_FALSE(corpus->TopicsOf("probabilistic").empty());
  EXPECT_FALSE(corpus->TopicsOf("probabilist").empty());  // stemmed form
  EXPECT_TRUE(corpus->TopicsOf("qqqq").empty());
}

TEST(DblpGen, RejectsZeroSizes) {
  DblpOptions o = SmallOptions();
  o.num_papers = 0;
  EXPECT_TRUE(GenerateDblp(o).status().IsInvalidArgument());
  o = SmallOptions();
  o.min_title_terms = 9;
  o.max_title_terms = 5;
  EXPECT_TRUE(GenerateDblp(o).status().IsInvalidArgument());
}

TEST(DblpGen, SyntheticTopicsSupported) {
  DblpOptions o = SmallOptions();
  o.topics = std::make_shared<const TopicModel>(
      TopicModel::Synthetic(4, 20));
  auto corpus = GenerateDblp(o);
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus->topics->num_topics(), 4u);
}

TEST(EcommerceGen, BuildsValidCorpus) {
  EcommerceOptions o;
  o.num_products = 120;
  o.num_reviews = 200;
  auto corpus = GenerateEcommerce(o);
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
  EXPECT_TRUE(corpus->db.ValidateIntegrity().ok());
  EXPECT_EQ(corpus->db.FindTable("products")->num_rows(), 120u);
  EXPECT_EQ(corpus->db.FindTable("reviews")->num_rows(), 200u);
  EXPECT_EQ(corpus->product_topic.size(), 120u);
}

TEST(EcommerceGen, RejectsZeroSizes) {
  EcommerceOptions o;
  o.num_brands = 0;
  EXPECT_TRUE(GenerateEcommerce(o).status().IsInvalidArgument());
}

}  // namespace
}  // namespace kqr
