// Deterministic fault-injection suite for sharded serving (DESIGN.md §8).
//
// Every fault a distributed deployment actually produces is staged here
// on loopback, deterministically, and checked for the router's typed-
// degradation contract: a dead, refusing, resetting or EOF-ing shard
// costs kUnavailable; a stalled shard costs kDeadlineExceeded within the
// caller's deadline (never a hang); a shard speaking garbage costs
// kUnavailable plus exactly one corrupt-frame count and a closed
// connection. Merges are never partial: queries owned by healthy shards
// return bit-identical to a local ReformulateTerms while the faulty
// shard's queries carry their typed error.
//
// The shard side is exercised both in-process (ShardServer) and as the
// real kqr_shardd child process (tests/shardd_harness.h) for the
// kill-mid-query case.

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine_builder.h"
#include "net/frame.h"
#include "net/socket.h"
#include "shard/partition.h"
#include "shard/router.h"
#include "shard/shard_server.h"
#include "shardd_harness.h"
#include "test_fixtures.h"

namespace kqr {
namespace {

using Clock = std::chrono::steady_clock;

std::shared_ptr<const ServingModel> MakeModel() {
  auto model = EngineBuilder().Build(testing_fixtures::MakeMicroDblp());
  KQR_CHECK(model.ok());
  return std::move(model).ValueOrDie();
}

std::vector<TermId> Resolve(const ServingModel& model,
                            const std::string& query) {
  auto terms = model.ResolveQuery(query);
  KQR_CHECK(terms.ok()) << terms.status().ToString();
  return *terms;
}

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// A TCP peer that accepts one connection and runs `handler` on it —
/// the scaffolding for every router-side fault below.
class FakePeer {
 public:
  using Handler = std::function<void(Socket conn)>;

  explicit FakePeer(Handler handler) {
    auto listener = Socket::ListenTcp("127.0.0.1", 0);
    KQR_CHECK(listener.ok()) << listener.status().ToString();
    auto port = listener->local_port();
    KQR_CHECK(port.ok());
    port_ = *port;
    thread_ = std::thread(
        [listener = std::move(*listener), handler = std::move(handler)]() mutable {
          for (int i = 0; i < 100; ++i) {
            auto ready = WaitReadable(listener.fd(), 0.1);
            if (!ready.ok()) return;
            auto conn = listener.Accept();
            if (!conn.ok()) return;
            if (conn->valid()) {
              handler(std::move(*conn));
              return;
            }
          }
        });
  }

  ~FakePeer() {
    if (thread_.joinable()) thread_.join();
  }

  uint16_t port() const { return port_; }

 private:
  uint16_t port_ = 0;
  std::thread thread_;
};

/// Reads from `conn` until it has seen at least `min_bytes` (the fakes
/// consume the router's request before injecting their fault, so the
/// router is already committed to the exchange).
void DrainAtLeast(Socket* conn, size_t min_bytes) {
  std::byte buf[4096];
  size_t seen = 0;
  while (seen < min_bytes) {
    auto ready = WaitReadable(conn->fd(), 2.0);
    if (!ready.ok() || !*ready) return;
    auto io = conn->Read(std::span<std::byte>(buf));
    if (!io.ok() || io->eof) return;
    seen += io->bytes;
  }
}

// ---------------------------------------------------------------------------
// Healthy-path round trips (the baseline the faults degrade from).

TEST(ShardServing, HealthStatsAndNullLoaderSwap) {
  auto model = MakeModel();
  auto shard = ShardServer::Start(model, /*loader=*/nullptr);
  ASSERT_TRUE(shard.ok()) << shard.status().ToString();

  auto router = ShardRouter::Connect(
      FleetTopology::SingleReplica({{"127.0.0.1", (*shard)->port()}}));
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  auto health = (*router)->Health({0, 0});
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->model_generation, 1u);
  EXPECT_EQ(health->vocab_terms, model->vocab().size());

  auto stats_json = (*router)->Stats({0, 0});
  ASSERT_TRUE(stats_json.ok()) << stats_json.status().ToString();
  EXPECT_NE(stats_json->find("kqr_shard_requests_total"), std::string::npos);

  // No loader installed: the swap round-trips but reports kNotImplemented
  // and the generation does not move.
  auto swap = (*router)->SwapModel({0, 0}, "/nowhere/model.kqr3");
  ASSERT_TRUE(swap.ok()) << swap.status().ToString();
  EXPECT_EQ(swap->status.code(), StatusCode::kNotImplemented);
  EXPECT_EQ((*shard)->generation(), 1u);
}

TEST(ShardServing, RoutedAnswersAreBitIdenticalToLocal) {
  auto model = MakeModel();
  auto shard = ShardServer::Start(model, nullptr);
  ASSERT_TRUE(shard.ok()) << shard.status().ToString();
  auto router = ShardRouter::Connect(
      FleetTopology::SingleReplica({{"127.0.0.1", (*shard)->port()}}));
  ASSERT_TRUE(router.ok());

  const std::vector<std::string> queries = {
      "uncertain query", "probabilistic mining", "alice smith", "vldb"};
  for (const std::string& q : queries) {
    const std::vector<TermId> terms = Resolve(*model, q);
    auto local = model->ReformulateTerms(terms, 5);
    ASSERT_TRUE(local.ok()) << local.status().ToString();
    auto remote = (*router)->Reformulate(terms, 5);
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    ASSERT_EQ(remote->size(), local->size()) << q;
    for (size_t i = 0; i < local->size(); ++i) {
      EXPECT_EQ((*remote)[i].terms, (*local)[i].terms);
      // Scores cross the wire as raw bits: exact equality, not NEAR.
      EXPECT_EQ((*remote)[i].score, (*local)[i].score);
      EXPECT_EQ((*remote)[i].is_identity, (*local)[i].is_identity);
    }
  }
  const RouterStats rs = (*router)->stats();
  EXPECT_EQ(rs.ok, queries.size());
  EXPECT_EQ(rs.unavailable, 0u);
  EXPECT_EQ(rs.deadline_exceeded, 0u);
  EXPECT_EQ(rs.corrupt_frames, 0u);
}

TEST(ShardServing, SwapWithLoaderBumpsGenerationAndKeepsServing) {
  auto model = MakeModel();
  ModelLoader loader = [](const std::string&) { return MakeModel(); };
  auto shard = ShardServer::Start(model, std::move(loader));
  ASSERT_TRUE(shard.ok()) << shard.status().ToString();
  auto router = ShardRouter::Connect(
      FleetTopology::SingleReplica({{"127.0.0.1", (*shard)->port()}}));
  ASSERT_TRUE(router.ok());

  const std::vector<TermId> terms = Resolve(*model, "uncertain query");
  auto before = (*router)->Reformulate(terms, 5);
  ASSERT_TRUE(before.ok());

  auto swap = (*router)->SwapModel({0, 0}, "any-path");
  ASSERT_TRUE(swap.ok()) << swap.status().ToString();
  ASSERT_TRUE(swap->status.ok()) << swap->status.ToString();
  EXPECT_EQ(swap->model_generation, 2u);
  EXPECT_EQ((*shard)->generation(), 2u);
  EXPECT_EQ((*shard)->stats().swaps, 1u);

  // Identical corpus, identical answers — and the connection survived
  // the swap (same model content, new generation).
  auto after = (*router)->Reformulate(terms, 5);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ASSERT_EQ(after->size(), before->size());
  for (size_t i = 0; i < after->size(); ++i) {
    EXPECT_EQ((*after)[i].terms, (*before)[i].terms);
    EXPECT_EQ((*after)[i].score, (*before)[i].score);
  }
  auto health = (*router)->Health({0, 0});
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->model_generation, 2u);
}

// ---------------------------------------------------------------------------
// Router-side faults, one per failure mode.

TEST(ShardFault, DeadShardIsUnavailableNotAHang) {
  // Bind an ephemeral port, then close it: connections there are refused.
  uint16_t dead_port = 0;
  {
    auto listener = Socket::ListenTcp("127.0.0.1", 0);
    ASSERT_TRUE(listener.ok());
    dead_port = *listener->local_port();
  }

  auto router = ShardRouter::Connect(
      FleetTopology::SingleReplica({{"127.0.0.1", dead_port}}));
  ASSERT_TRUE(router.ok()) << "a down shard must not fail construction";

  const Clock::time_point start = Clock::now();
  auto result = (*router)->Reformulate({1, 2}, 5, Deadline::After(2.0));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_LT(SecondsSince(start), 2.5);
  EXPECT_EQ((*router)->stats().unavailable, 1u);
}

TEST(ShardFault, AcceptThenStallIsDeadlineExceededWithinDeadline) {
  // A listener whose backlog completes the TCP handshake but whose owner
  // never reads or writes: the router's scatter succeeds into kernel
  // buffers and the gather must give up at the deadline, not hang.
  auto listener = Socket::ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  const uint16_t port = *listener->local_port();

  auto router =
      ShardRouter::Connect(FleetTopology::SingleReplica({{"127.0.0.1", port}}));
  ASSERT_TRUE(router.ok());

  const std::vector<std::vector<TermId>> queries = {{1}, {2, 3}, {4}};
  const Clock::time_point start = Clock::now();
  auto results =
      (*router)->ReformulateBatch(queries, 5, Deadline::After(0.5));
  const double elapsed = SecondsSince(start);
  ASSERT_EQ(results.size(), queries.size());
  for (const ServeResult& r : results) {
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  }
  EXPECT_GE(elapsed, 0.4);
  EXPECT_LT(elapsed, 3.0);
  const RouterStats rs = (*router)->stats();
  EXPECT_EQ(rs.deadline_exceeded, queries.size());
  EXPECT_EQ(rs.corrupt_frames, 0u);
}

TEST(ShardFault, MidStreamDisconnectIsUnavailable) {
  // The peer consumes the request, sends a frame header promising 100
  // payload bytes, delivers 10, and vanishes. Truncation is transport
  // loss, not corruption: kUnavailable, corrupt_frames stays 0.
  FakePeer peer([](Socket conn) {
    DrainAtLeast(&conn, 1);
    std::string frame =
        EncodeFrameString(FrameType::kReformulateResponse, std::string(100, 'x'));
    frame.resize(kFrameHeaderBytes + 10);
    (void)conn.Write(std::as_bytes(std::span(frame)));
    conn.Close();
  });

  auto router = ShardRouter::Connect(
      FleetTopology::SingleReplica({{"127.0.0.1", peer.port()}}));
  ASSERT_TRUE(router.ok());
  auto result = (*router)->Reformulate({7}, 5, Deadline::After(2.0));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  const RouterStats rs = (*router)->stats();
  EXPECT_EQ(rs.unavailable, 1u);
  EXPECT_EQ(rs.corrupt_frames, 0u);
}

TEST(ShardFault, GarbageBytesPeerIsUnavailablePlusOneCorruptFrame) {
  FakePeer peer([](Socket conn) {
    DrainAtLeast(&conn, 1);
    const std::string garbage(64, '\xa5');
    (void)conn.Write(std::as_bytes(std::span(garbage)));
    // Leave the connection open: the router must disconnect on its own —
    // a mis-framed stream has no trustworthy continuation.
    auto ready = WaitReadable(conn.fd(), 2.0);
    (void)ready;
  });

  auto router = ShardRouter::Connect(
      FleetTopology::SingleReplica({{"127.0.0.1", peer.port()}}));
  ASSERT_TRUE(router.ok());
  auto result = (*router)->Reformulate({9}, 5, Deadline::After(2.0));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  const RouterStats rs = (*router)->stats();
  EXPECT_EQ(rs.unavailable, 1u);
  EXPECT_EQ(rs.corrupt_frames, 1u);
}

TEST(ShardFault, HealthyShardQueriesSurviveADeadShardExactly) {
  // Two-shard fleet: shard 0 live, shard 1 refused. The merge must not
  // be partial in either direction — every query owned by shard 0 is
  // bit-identical to local, every query owned by shard 1 is exactly
  // kUnavailable.
  auto model = MakeModel();
  auto shard0 = ShardServer::Start(model, nullptr);
  ASSERT_TRUE(shard0.ok());
  uint16_t dead_port = 0;
  {
    auto listener = Socket::ListenTcp("127.0.0.1", 0);
    ASSERT_TRUE(listener.ok());
    dead_port = *listener->local_port();
  }
  auto router = ShardRouter::Connect(FleetTopology::SingleReplica(
      {{"127.0.0.1", (*shard0)->port()}, {"127.0.0.1", dead_port}}));
  ASSERT_TRUE(router.ok());

  // Single-term queries over the whole micro vocabulary: ownership is
  // computable in-test and both shards are guaranteed coverage.
  std::vector<std::vector<TermId>> queries;
  for (TermId t = 0; t < static_cast<TermId>(model->vocab().size()); ++t) {
    queries.push_back({t});
  }
  size_t owned_by_dead = 0;
  for (const auto& q : queries) {
    if (OwnerShard(std::span<const TermId>(q), 2) == 1) ++owned_by_dead;
  }
  ASSERT_GT(owned_by_dead, 0u) << "fixture must cover the dead shard";
  ASSERT_LT(owned_by_dead, queries.size()) << "and the live one";

  auto results =
      (*router)->ReformulateBatch(queries, 5, Deadline::After(5.0));
  ASSERT_EQ(results.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const size_t owner = OwnerShard(std::span<const TermId>(queries[i]), 2);
    if (owner == 1) {
      ASSERT_FALSE(results[i].ok()) << "query " << i;
      EXPECT_EQ(results[i].status().code(), StatusCode::kUnavailable);
      continue;
    }
    auto local = model->ReformulateTerms(queries[i], 5);
    if (!local.ok()) {
      ASSERT_FALSE(results[i].ok());
      EXPECT_EQ(results[i].status().code(), local.status().code());
      continue;
    }
    ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
    ASSERT_EQ(results[i]->size(), local->size());
    for (size_t j = 0; j < local->size(); ++j) {
      EXPECT_EQ((*results[i])[j].terms, (*local)[j].terms);
      EXPECT_EQ((*results[i])[j].score, (*local)[j].score);
    }
  }
  const RouterStats rs = (*router)->stats();
  EXPECT_EQ(rs.unavailable, owned_by_dead);
  EXPECT_EQ(rs.ok + rs.remote_errors, queries.size() - owned_by_dead);
}

TEST(ShardFault, KilledShardProcessIsUnavailableThenRecoverable) {
  ShardProcess shardd;
  ASSERT_TRUE(shardd.Start({"--demo-authors", "40", "--demo-papers", "120",
                            "--demo-venues", "8", "--demo-seed", "7",
                            "--workers", "2"}));

  auto router = ShardRouter::Connect(
      FleetTopology::SingleReplica({{"127.0.0.1", shardd.port()}}));
  ASSERT_TRUE(router.ok());
  auto health = (*router)->Health({0, 0}, Deadline::After(5.0));
  ASSERT_TRUE(health.ok()) << health.status().ToString();

  auto alive = (*router)->Reformulate({1, 2}, 5, Deadline::After(5.0));
  // The query may or may not rank anything, but transport must be clean.
  if (!alive.ok()) {
    EXPECT_NE(alive.status().code(), StatusCode::kUnavailable);
    EXPECT_NE(alive.status().code(), StatusCode::kDeadlineExceeded);
  }

  // SIGKILL: the kernel resets the connection under the router's feet.
  shardd.Kill();
  const Clock::time_point start = Clock::now();
  auto dead = (*router)->Reformulate({1, 2}, 5, Deadline::After(2.0));
  ASSERT_FALSE(dead.ok());
  EXPECT_EQ(dead.status().code(), StatusCode::kUnavailable);
  EXPECT_LT(SecondsSince(start), 2.5);

  // A replacement shard on the same address heals the fleet through the
  // router's lazy reconnect — no router restart required.
  ShardProcess replacement;
  ASSERT_TRUE(replacement.Start(
      {"--demo-authors", "40", "--demo-papers", "120", "--demo-venues", "8",
       "--demo-seed", "7", "--workers", "2", "--port",
       std::to_string(shardd.port())}));
  ASSERT_EQ(replacement.port(), shardd.port());
  auto healed = (*router)->Health({0, 0}, Deadline::After(5.0));
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_GE((*router)->stats().reconnects, 1u);
}

// ---------------------------------------------------------------------------
// Replica groups: failover and multiplexing. Replicas of a group serve
// the same model, so the router may retry a transport-failed sub-batch
// on a sibling replica without changing any answer — and one connection
// may carry several sub-batches whose responses arrive in any order.

TEST(ShardReplica, DeadReplicaFailsOverWithoutLosingAQuery) {
  // Group 0 = {refused port, live shard}. Every query must come back
  // bit-identical to local serving; the dead replica costs failovers,
  // never outcomes.
  auto model = MakeModel();
  auto shard = ShardServer::Start(model, nullptr);
  ASSERT_TRUE(shard.ok());
  uint16_t dead_port = 0;
  {
    auto listener = Socket::ListenTcp("127.0.0.1", 0);
    ASSERT_TRUE(listener.ok());
    dead_port = *listener->local_port();
  }
  RouterOptions options;
  options.subbatch_queries = 2;  // several chunks, so both replicas are hit
  auto router = ShardRouter::Connect(
      FleetTopology::Replicated(
          {{{"127.0.0.1", dead_port}, {"127.0.0.1", (*shard)->port()}}}),
      options);
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  std::vector<std::vector<TermId>> queries;
  for (TermId t = 0; t < static_cast<TermId>(model->vocab().size()); ++t) {
    queries.push_back({t});
  }
  auto results =
      (*router)->ReformulateBatch(queries, 5, Deadline::After(10.0));
  ASSERT_EQ(results.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto local = model->ReformulateTerms(queries[i], 5);
    ASSERT_EQ(results[i].ok(), local.ok()) << "query " << i;
    if (!local.ok()) {
      EXPECT_EQ(results[i].status().code(), local.status().code());
      continue;
    }
    ASSERT_EQ(results[i]->size(), local->size());
    for (size_t j = 0; j < local->size(); ++j) {
      EXPECT_EQ((*results[i])[j].terms, (*local)[j].terms);
      EXPECT_EQ((*results[i])[j].score, (*local)[j].score);
    }
  }
  const RouterStats rs = (*router)->stats();
  EXPECT_EQ(rs.unavailable, 0u);
  EXPECT_EQ(rs.deadline_exceeded, 0u);
  EXPECT_GE(rs.failovers, 1u) << "round-robin must have hit the dead one";
}

TEST(ShardReplica, MidStreamDeathFailsOverToTheSibling) {
  // Replica 0 consumes the request and vanishes mid-exchange; replica 1
  // is a real shard. The in-flight sub-batch must be re-sent to the
  // sibling within the same deadline and still answer correctly.
  auto model = MakeModel();
  auto shard = ShardServer::Start(model, nullptr);
  ASSERT_TRUE(shard.ok());
  FakePeer peer([](Socket conn) {
    DrainAtLeast(&conn, 1);
    conn.Close();  // EOF with a request outstanding: transport loss
  });

  auto router = ShardRouter::Connect(FleetTopology::Replicated(
      {{{"127.0.0.1", peer.port()}, {"127.0.0.1", (*shard)->port()}}}));
  ASSERT_TRUE(router.ok());

  const std::vector<TermId> terms = Resolve(*model, "uncertain query");
  auto local = model->ReformulateTerms(terms, 5);
  ASSERT_TRUE(local.ok());
  auto remote = (*router)->Reformulate(terms, 5, Deadline::After(10.0));
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  ASSERT_EQ(remote->size(), local->size());
  for (size_t i = 0; i < local->size(); ++i) {
    EXPECT_EQ((*remote)[i].terms, (*local)[i].terms);
    EXPECT_EQ((*remote)[i].score, (*local)[i].score);
  }
  const RouterStats rs = (*router)->stats();
  EXPECT_EQ(rs.ok, 1u);
  EXPECT_EQ(rs.unavailable, 0u);
  EXPECT_EQ(rs.failovers, 1u);
}

TEST(ShardReplica, StalledReplicaIsNotRetried) {
  // kDeadlineExceeded is not a failover trigger: the budget is spent,
  // and re-sending to a healthy sibling could only answer late. The
  // live replica must never see the request.
  auto model = MakeModel();
  auto shard = ShardServer::Start(model, nullptr);
  ASSERT_TRUE(shard.ok());
  auto stall = Socket::ListenTcp("127.0.0.1", 0);  // accepts, never reads
  ASSERT_TRUE(stall.ok());

  auto router = ShardRouter::Connect(FleetTopology::Replicated(
      {{{"127.0.0.1", *stall->local_port()},
        {"127.0.0.1", (*shard)->port()}}}));
  ASSERT_TRUE(router.ok());

  const Clock::time_point start = Clock::now();
  auto result = (*router)->Reformulate({1, 2}, 5, Deadline::After(0.5));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(SecondsSince(start), 3.0);
  const RouterStats rs = (*router)->stats();
  EXPECT_EQ(rs.deadline_exceeded, 1u);
  EXPECT_EQ(rs.failovers, 0u);
}

TEST(ShardReplica, OutOfOrderResponsesAreSlottedByRequestId) {
  // One connection, two pipelined sub-batches, responses sent in
  // reverse. The merge must follow request ids, not arrival order.
  FakePeer peer([](Socket conn) {
    FrameBuffer in(kMaxFramePayload);
    std::vector<ReformulateRequest> requests;
    std::byte buf[4096];
    while (requests.size() < 2) {
      auto ready = WaitReadable(conn.fd(), 5.0);
      if (!ready.ok() || !*ready) return;
      auto io = conn.Read(std::span<std::byte>(buf));
      if (!io.ok() || io->eof) return;
      in.Append(std::span<const std::byte>(buf, io->bytes));
      for (;;) {
        auto next = in.Next();
        if (!next.ok() || !next->has_value()) break;
        auto request = DecodeReformulateRequest(
            std::as_bytes(std::span((*next)->payload)));
        if (!request.ok()) return;
        requests.push_back(std::move(*request));
      }
    }
    // Reply newest-first, echoing each sub-batch's own terms so the
    // test can tell which response landed in which slot.
    for (size_t r = requests.size(); r-- > 0;) {
      ReformulateResponse response;
      response.request_id = requests[r].request_id;
      for (const auto& q : requests[r].queries) {
        ReformulatedQuery echo;
        echo.terms = q;
        echo.score = static_cast<double>(q.front());
        response.results.push_back(
            std::vector<ReformulatedQuery>{std::move(echo)});
      }
      const std::string wire = EncodeFrameString(
          FrameType::kReformulateResponse,
          EncodeReformulateResponse(response));
      if (!conn.Write(std::as_bytes(std::span(wire))).ok()) return;
    }
    auto lingering = WaitReadable(conn.fd(), 2.0);
    (void)lingering;
  });

  RouterOptions options;
  options.subbatch_queries = 1;  // two chunks from a batch of two
  auto router = ShardRouter::Connect(
      FleetTopology::SingleReplica({{"127.0.0.1", peer.port()}}), options);
  ASSERT_TRUE(router.ok());

  const std::vector<std::vector<TermId>> queries = {{11}, {22}};
  auto results =
      (*router)->ReformulateBatch(queries, 5, Deadline::After(5.0));
  ASSERT_EQ(results.size(), 2u);
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
    ASSERT_EQ(results[i]->size(), 1u);
    EXPECT_EQ((*results[i])[0].terms, queries[i]) << "mis-slotted merge";
  }
  const RouterStats rs = (*router)->stats();
  EXPECT_EQ(rs.ok, 2u);
  EXPECT_EQ(rs.corrupt_frames, 0u);
  EXPECT_EQ(rs.failovers, 0u);
}

TEST(ShardReplica, UnknownRequestIdIsCorruptionNotAMixup) {
  // A well-formed response carrying an id the router never issued is a
  // protocol violation: it must not complete anything, and the stream
  // is closed like any corrupt frame.
  FakePeer peer([](Socket conn) {
    DrainAtLeast(&conn, 1);
    ReformulateResponse bogus;
    bogus.request_id = 0xdeadbeef;  // never a router-issued id
    bogus.results.push_back(std::vector<ReformulatedQuery>{});
    const std::string wire =
        EncodeFrameString(FrameType::kReformulateResponse,
                          EncodeReformulateResponse(bogus));
    (void)conn.Write(std::as_bytes(std::span(wire)));
    auto lingering = WaitReadable(conn.fd(), 2.0);
    (void)lingering;
  });

  auto router = ShardRouter::Connect(
      FleetTopology::SingleReplica({{"127.0.0.1", peer.port()}}));
  ASSERT_TRUE(router.ok());
  auto result = (*router)->Reformulate({3}, 5, Deadline::After(2.0));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  const RouterStats rs = (*router)->stats();
  EXPECT_EQ(rs.corrupt_frames, 1u);
  EXPECT_EQ(rs.unavailable, 1u);
}

// ---------------------------------------------------------------------------
// Shard-side faults: a misbehaving client must cost the shard nothing but
// one closed connection.

TEST(ShardFault, ShardClosesConnectionOnGarbageBytes) {
  auto model = MakeModel();
  auto shard = ShardServer::Start(model, nullptr);
  ASSERT_TRUE(shard.ok());

  auto conn = Socket::ConnectTcp("127.0.0.1", (*shard)->port(), 2.0);
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  const std::string garbage = "this is not a KQRF frame at all........";
  auto wrote = conn->Write(std::as_bytes(std::span(garbage)));
  ASSERT_TRUE(wrote.ok());

  // The shard must close on us (EOF) rather than answer or linger.
  auto ready = WaitReadable(conn->fd(), 5.0);
  ASSERT_TRUE(ready.ok());
  ASSERT_TRUE(*ready) << "shard did not react to garbage";
  std::byte buf[64];
  auto io = conn->Read(std::span<std::byte>(buf));
  ASSERT_TRUE(io.ok()) << io.status().ToString();
  EXPECT_TRUE(io->eof);

  const ShardStats ss = (*shard)->stats();
  EXPECT_EQ(ss.corrupt_frames, 1u);
  EXPECT_EQ(ss.connections_closed, 1u);

  // And a well-formed client still gets service afterwards.
  auto router = ShardRouter::Connect(
      FleetTopology::SingleReplica({{"127.0.0.1", (*shard)->port()}}));
  ASSERT_TRUE(router.ok());
  auto health = (*router)->Health({0, 0});
  EXPECT_TRUE(health.ok()) << health.status().ToString();
}

TEST(ShardFault, ConnectionsBeyondTheCapAreRejectedNotServed) {
  auto model = MakeModel();
  ShardServerOptions options;
  options.max_connections = 1;
  auto shard = ShardServer::Start(model, nullptr, options);
  ASSERT_TRUE(shard.ok());

  auto first = Socket::ConnectTcp("127.0.0.1", (*shard)->port(), 2.0);
  ASSERT_TRUE(first.ok());
  // Exchange one health round-trip so the shard has registered us.
  const std::string probe =
      EncodeFrameString(FrameType::kHealthRequest, EncodeRequestIdPayload(1));
  ASSERT_TRUE(first->Write(std::as_bytes(std::span(probe))).ok());
  ASSERT_TRUE(*WaitReadable(first->fd(), 5.0));

  auto second = Socket::ConnectTcp("127.0.0.1", (*shard)->port(), 2.0);
  ASSERT_TRUE(second.ok());
  auto ready = WaitReadable(second->fd(), 5.0);
  ASSERT_TRUE(ready.ok());
  ASSERT_TRUE(*ready) << "over-cap connection neither served nor closed";
  std::byte buf[64];
  auto io = second->Read(std::span<std::byte>(buf));
  ASSERT_TRUE(io.ok());
  EXPECT_TRUE(io->eof);
  EXPECT_EQ((*shard)->stats().connections_rejected, 1u);
}

}  // namespace
}  // namespace kqr
