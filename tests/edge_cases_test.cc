// Edge cases across module boundaries that the focused suites don't
// cover: degenerate queries, empty structures, boundary options.

#include <gtest/gtest.h>

#include <sstream>

#include "core/engine_builder.h"
#include "eval/metrics.h"
#include "graph/tat_builder.h"
#include "test_fixtures.h"
#include "walk/similarity_index.h"

namespace kqr {
namespace {

using testing_fixtures::MicroCorpus;

TEST(EdgeCases, EmptyDatabaseEngine) {
  Database db("empty");
  auto engine = EngineBuilder().Build(std::move(db));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ((*engine)->vocab().size(), 0u);
  EXPECT_EQ((*engine)->graph().num_nodes(), 0u);
  EXPECT_TRUE((*engine)->ResolveQuery("anything").status().IsNotFound());
}

TEST(EdgeCases, TextlessTablesOnly) {
  Database db("textless");
  auto schema = Schema::Make("numbers",
                             {Column("id", ValueType::kInt64),
                              Column("value", ValueType::kDouble)},
                             "id");
  ASSERT_TRUE(schema.ok());
  Table* t = *db.CreateTable(std::move(*schema));
  ASSERT_TRUE(t->Insert({Value(int64_t{1}), Value(3.5)}).ok());
  auto engine = EngineBuilder().Build(std::move(db));
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ((*engine)->vocab().size(), 0u);
  // Tuple nodes exist, term nodes do not.
  EXPECT_EQ((*engine)->graph().space().num_term_nodes(), 0u);
  EXPECT_EQ((*engine)->graph().space().num_tuple_nodes(), 1u);
}

TEST(EdgeCases, SimilarityIndexBuildWholeVocabulary) {
  MicroCorpus corpus = MicroCorpus::Make();
  auto graph =
      BuildTatGraph(corpus.db, corpus.vocab, corpus.index,
                    TatBuilderOptions{.max_doc_frequency_fraction = 1.0});
  ASSERT_TRUE(graph.ok());
  GraphStats stats(*graph);
  SimilarityIndex index = SimilarityIndex::Build(*graph, stats);
  // Every graph-connected term got an entry.
  size_t connected = 0;
  for (TermId t = 0; t < corpus.vocab.size(); ++t) {
    if (graph->Degree(graph->NodeOfTerm(t)) > 0) {
      ++connected;
      EXPECT_TRUE(index.Contains(t)) << corpus.vocab.Describe(t);
    }
  }
  EXPECT_EQ(index.size(), connected);
}

TEST(EdgeCases, MinDegreeSkipsIsolatedTerms) {
  MicroCorpus corpus = MicroCorpus::Make();
  TatBuilderOptions cut;
  cut.max_doc_frequency_fraction = 0.12;  // isolates df>=2 terms
  auto graph = BuildTatGraph(corpus.db, corpus.vocab, corpus.index, cut);
  ASSERT_TRUE(graph.ok());
  GraphStats stats(*graph);
  SimilarityIndex index = SimilarityIndex::Build(*graph, stats);
  TermId isolated = corpus.Title("uncertain");
  EXPECT_FALSE(index.Contains(isolated));
}

TEST(EdgeCases, MeanQueryDistanceEmptyInputs) {
  MicroCorpus corpus = MicroCorpus::Make();
  auto graph =
      BuildTatGraph(corpus.db, corpus.vocab, corpus.index,
                    TatBuilderOptions{.max_doc_frequency_fraction = 1.0});
  ASSERT_TRUE(graph.ok());
  EXPECT_DOUBLE_EQ(MeanQueryDistance(*graph, {}, {}), 0.0);
  std::vector<std::vector<TermId>> originals = {{corpus.Title("query")}};
  std::vector<std::vector<ReformulatedQuery>> rankings = {{}};
  EXPECT_DOUBLE_EQ(MeanQueryDistance(*graph, originals, rankings), 0.0);
}

TEST(EdgeCases, MeanQueryDistanceIdenticalQueryIsZero) {
  MicroCorpus corpus = MicroCorpus::Make();
  auto graph =
      BuildTatGraph(corpus.db, corpus.vocab, corpus.index,
                    TatBuilderOptions{.max_doc_frequency_fraction = 1.0});
  ASSERT_TRUE(graph.ok());
  std::vector<std::vector<TermId>> originals = {
      {corpus.Title("query"), corpus.Title("uncertain")}};
  ReformulatedQuery same;
  same.terms = originals[0];
  std::vector<std::vector<ReformulatedQuery>> rankings = {{same}};
  EXPECT_DOUBLE_EQ(MeanQueryDistance(*graph, originals, rankings), 0.0);
}

TEST(EdgeCases, QueryParserAtomSpanLimit) {
  MicroCorpus corpus = MicroCorpus::Make();
  QueryParserOptions options;
  options.max_atom_words = 1;  // disable multi-word atoms
  QueryParser parser(corpus.analyzer, corpus.vocab, options);
  KeywordQuery q = parser.Parse("alice smith");
  // Without multi-word matching, "alice" and "smith" stay separate (and
  // unresolved — no such single terms exist).
  EXPECT_EQ(q.size(), 2u);
  EXPECT_FALSE(q.FullyResolved());
}

TEST(EdgeCases, ReformulateSingleCharacterAndStopwordQuery) {
  Database db = testing_fixtures::MakeMicroDblp();
  auto engine = EngineBuilder().Build(std::move(db));
  ASSERT_TRUE(engine.ok());
  // Pure-stopword input tokenizes to nothing resolvable.
  EXPECT_FALSE((*engine)->Reformulate("the of and", 5).ok());
  EXPECT_FALSE((*engine)->Reformulate("a", 5).ok());
}

TEST(EdgeCases, LongQueryAgainstTinyCorpus) {
  Database db = testing_fixtures::MakeMicroDblp();
  auto engine = EngineBuilder().Build(std::move(db));
  ASSERT_TRUE(engine.ok());
  auto result =
      (*engine)->Reformulate("uncertain query mining pattern data", 5);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const auto& q : *result) {
    EXPECT_EQ(q.terms.size(), 5u);
  }
}

TEST(EdgeCases, NodeSpaceEmptyTables) {
  NodeSpace space({0, 0, 3}, 2);
  EXPECT_EQ(space.num_tuple_nodes(), 3u);
  EXPECT_EQ(space.num_term_nodes(), 2u);
  TupleRef ref{2, 1};
  EXPECT_EQ(space.ToTuple(space.FromTuple(ref)), ref);
  EXPECT_EQ(space.KindOf(space.FromTerm(0)), NodeKind::kTerm);
}

}  // namespace
}  // namespace kqr
