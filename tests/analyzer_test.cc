#include "text/analyzer.h"

#include <gtest/gtest.h>

namespace kqr {
namespace {

TEST(Analyzer, SegmentedPipelineFull) {
  Analyzer a;
  auto terms = a.AnalyzeSegmented("Efficient Processing of XML Queries");
  // "of" is a stopword; the rest are stemmed.
  ASSERT_EQ(terms.size(), 4u);
  EXPECT_EQ(terms[0], "effici");
  EXPECT_EQ(terms[1], "process");
  EXPECT_EQ(terms[2], "xml");
  EXPECT_EQ(terms[3], "queri");
}

TEST(Analyzer, PreservesDuplicatesForTf) {
  Analyzer a;
  auto terms = a.AnalyzeSegmented("query query query");
  EXPECT_EQ(terms.size(), 3u);
}

TEST(Analyzer, StemmingToggle) {
  AnalyzerOptions opts;
  opts.stem = false;
  Analyzer a(opts);
  auto terms = a.AnalyzeSegmented("indexing queries");
  ASSERT_EQ(terms.size(), 2u);
  EXPECT_EQ(terms[0], "indexing");
  EXPECT_EQ(terms[1], "queries");
}

TEST(Analyzer, StopwordToggle) {
  AnalyzerOptions opts;
  opts.remove_stopwords = false;
  Analyzer a(opts);
  auto terms = a.AnalyzeSegmented("the data");
  ASSERT_EQ(terms.size(), 2u);
  EXPECT_EQ(terms[0], "the");
}

TEST(Analyzer, AtomicNormalizesWhitespaceAndCase) {
  Analyzer a;
  EXPECT_EQ(a.AnalyzeAtomic("  Christian  S.   Jensen "),
            "christian s. jensen");
  EXPECT_EQ(a.AnalyzeAtomic("VLDB"), "vldb");
  EXPECT_EQ(a.AnalyzeAtomic(""), "");
  EXPECT_EQ(a.AnalyzeAtomic("   "), "");
}

TEST(Analyzer, AtomicKeepsPunctuation) {
  Analyzer a;
  // Names keep dots/hyphens — they are part of the atom.
  EXPECT_EQ(a.AnalyzeAtomic("J.-P. Martin"), "j.-p. martin");
}

TEST(Analyzer, DispatchByRole) {
  Analyzer a;
  EXPECT_TRUE(a.Analyze("anything", TextRole::kNone).empty());
  auto seg = a.Analyze("two words", TextRole::kSegmented);
  EXPECT_EQ(seg.size(), 2u);
  auto atom = a.Analyze("Two Words", TextRole::kAtomic);
  ASSERT_EQ(atom.size(), 1u);
  EXPECT_EQ(atom[0], "two words");
}

TEST(Analyzer, AtomicBlankYieldsNothing) {
  Analyzer a;
  EXPECT_TRUE(a.Analyze("   ", TextRole::kAtomic).empty());
}

}  // namespace
}  // namespace kqr
