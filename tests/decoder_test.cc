// Tests of the two top-k decoders (Algorithms 2 and 3) against brute
// force and against each other — the central correctness property of the
// online stage.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "core/astar_topk.h"
#include "core/viterbi_topk.h"

namespace kqr {
namespace {

// Builds a random m-position, n-state HMM with given zero fraction in the
// transition matrix (zeros stress the pruning paths).
HmmModel RandomModel(size_t m, size_t n, uint64_t seed,
                     double zero_fraction = 0.0) {
  Rng rng(seed);
  HmmModel model;
  model.states.assign(m, std::vector<CandidateState>(n));
  model.pi.resize(n);
  model.emission.assign(m, std::vector<double>(n));
  for (size_t i = 0; i < n; ++i) model.pi[i] = 0.1 + rng.NextDouble();
  for (size_t c = 0; c < m; ++c) {
    for (size_t i = 0; i < n; ++i) {
      model.states[c][i].term = static_cast<TermId>(c * n + i);
      model.emission[c][i] = 0.05 + rng.NextDouble();
    }
  }
  model.trans.assign(
      m > 0 ? m - 1 : 0,
      std::vector<std::vector<double>>(n, std::vector<double>(n)));
  for (size_t c = 0; c + 1 < m; ++c) {
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        model.trans[c][i][j] =
            rng.NextDouble() < zero_fraction ? 0.0 : 0.05 + rng.NextDouble();
      }
    }
  }
  return model;
}

// Exhaustive top-k by enumerating all n^m paths.
std::vector<DecodedPath> BruteForceTopK(const HmmModel& model, size_t k) {
  const size_t m = model.num_positions();
  std::vector<DecodedPath> all;
  std::vector<int> path(m, 0);
  while (true) {
    double score = model.PathScore(path);
    all.push_back(DecodedPath{path, score});
    // Increment the mixed-radix counter.
    size_t c = 0;
    while (c < m) {
      if (static_cast<size_t>(++path[c]) < model.num_states(c)) break;
      path[c] = 0;
      ++c;
    }
    if (c == m) break;
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const DecodedPath& a, const DecodedPath& b) {
                     return a.score > b.score;
                   });
  if (all.size() > k) all.resize(k);
  return all;
}

struct SweepParam {
  size_t m, n, k;
  uint64_t seed;
  double zeros;
};

class DecoderSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(DecoderSweep, ViterbiTopKMatchesBruteForce) {
  const SweepParam& p = GetParam();
  HmmModel model = RandomModel(p.m, p.n, p.seed, p.zeros);
  auto expected = BruteForceTopK(model, p.k);
  auto got = ViterbiTopK(model, p.k);
  // Both decoders only emit positive-probability paths (a zero-score
  // "reformulation" is meaningless; real models are smoothed positive).
  size_t positive = 0;
  for (const auto& path : expected) {
    if (path.score > 0) ++positive;
  }
  ASSERT_GE(got.size(), std::min(positive, p.k));
  for (size_t i = 0; i < std::min(positive, got.size()); ++i) {
    EXPECT_NEAR(got[i].score, expected[i].score, 1e-12)
        << "rank " << i;
    EXPECT_NEAR(model.PathScore(got[i].states), got[i].score, 1e-12);
  }
}

TEST_P(DecoderSweep, AStarMatchesBruteForce) {
  const SweepParam& p = GetParam();
  HmmModel model = RandomModel(p.m, p.n, p.seed, p.zeros);
  auto expected = BruteForceTopK(model, p.k);
  // Zero-heavy models may have fewer than k nonzero paths; A* only emits
  // reachable (positive) paths.
  AStarStats stats;
  auto got = AStarTopK(model, p.k, &stats);
  size_t positive = 0;
  for (const auto& path : expected) {
    if (path.score > 0) ++positive;
  }
  ASSERT_GE(got.size(), std::min(positive, p.k));
  for (size_t i = 0; i < std::min(positive, got.size()); ++i) {
    EXPECT_NEAR(got[i].score, expected[i].score, 1e-12)
        << "rank " << i;
    EXPECT_NEAR(model.PathScore(got[i].states), got[i].score, 1e-12);
  }
  if (positive > 0) {
    EXPECT_GT(stats.nodes_expanded, 0u);
  }
  EXPECT_GE(stats.nodes_generated, got.size());
}

TEST_P(DecoderSweep, AlgorithmsAgreeWithEachOther) {
  const SweepParam& p = GetParam();
  HmmModel model = RandomModel(p.m, p.n, p.seed, p.zeros);
  auto viterbi = ViterbiTopK(model, p.k);
  auto astar = AStarTopK(model, p.k);
  size_t n = std::min(viterbi.size(), astar.size());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(viterbi[i].score, astar[i].score, 1e-12) << "rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SmallModels, DecoderSweep,
    ::testing::Values(SweepParam{1, 4, 3, 11, 0.0},
                      SweepParam{2, 3, 5, 12, 0.0},
                      SweepParam{3, 4, 10, 13, 0.0},
                      SweepParam{4, 3, 8, 14, 0.0},
                      SweepParam{5, 3, 20, 15, 0.0},
                      SweepParam{6, 2, 10, 16, 0.0},
                      SweepParam{3, 5, 7, 17, 0.3},
                      SweepParam{4, 4, 12, 18, 0.5},
                      SweepParam{5, 3, 15, 19, 0.7},
                      SweepParam{2, 6, 36, 20, 0.2}));

TEST(ViterbiDecode, Top1MatchesTopKFirst) {
  HmmModel model = RandomModel(5, 6, 99);
  ViterbiOutcome outcome = ViterbiDecode(model);
  auto topk = ViterbiTopK(model, 3);
  ASSERT_FALSE(topk.empty());
  EXPECT_NEAR(outcome.best.score, topk[0].score, 1e-12);
  EXPECT_EQ(outcome.best.states, topk[0].states);
}

TEST(ViterbiDecode, DeltaIsMonotoneUpperBoundPerCell) {
  HmmModel model = RandomModel(4, 5, 7);
  ViterbiOutcome outcome = ViterbiDecode(model);
  ASSERT_EQ(outcome.delta.size(), 4u);
  // delta[c][i] must equal the best brute-force prefix ending at (c, i).
  for (size_t i = 0; i < model.num_states(0); ++i) {
    EXPECT_NEAR(outcome.delta[0][i], model.pi[i] * model.emission[0][i],
                1e-12);
  }
}

TEST(Decoders, EmptyModel) {
  HmmModel model;
  EXPECT_TRUE(ViterbiTopK(model, 5).empty());
  EXPECT_TRUE(AStarTopK(model, 5).empty());
}

TEST(Decoders, KZero) {
  HmmModel model = RandomModel(3, 3, 1);
  EXPECT_TRUE(ViterbiTopK(model, 0).empty());
  EXPECT_TRUE(AStarTopK(model, 0).empty());
}

TEST(Decoders, KLargerThanPathSpace) {
  HmmModel model = RandomModel(2, 2, 5);
  auto viterbi = ViterbiTopK(model, 100);
  EXPECT_EQ(viterbi.size(), 4u);  // 2^2 paths exist
  auto astar = AStarTopK(model, 100);
  EXPECT_EQ(astar.size(), 4u);
}

TEST(Decoders, SinglePosition) {
  HmmModel model = RandomModel(1, 5, 31);
  auto viterbi = ViterbiTopK(model, 3);
  auto astar = AStarTopK(model, 3);
  ASSERT_EQ(viterbi.size(), 3u);
  ASSERT_EQ(astar.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(viterbi[i].score, astar[i].score, 1e-12);
    EXPECT_NEAR(viterbi[i].score,
                model.PathScore(viterbi[i].states), 1e-12);
  }
  EXPECT_GE(viterbi[0].score, viterbi[1].score);
}

TEST(Decoders, ScoresDescendWithinResult) {
  HmmModel model = RandomModel(4, 5, 77);
  for (auto& result : {ViterbiTopK(model, 10), AStarTopK(model, 10)}) {
    for (size_t i = 1; i < result.size(); ++i) {
      EXPECT_GE(result[i - 1].score, result[i].score);
    }
  }
}

TEST(Decoders, SingleTermZeroStateParity) {
  // Regression: AStarTopK used to exempt m == 1 from its dead-state
  // filter and seeded zero-probability states, returning zero-score
  // "paths" that ViterbiTopK never emits. Both decoders must agree on
  // degenerate single-term models: positive paths only.
  HmmModel model = RandomModel(1, 4, 21);
  model.pi[1] = 0.0;
  model.emission[0][3] = 0.0;
  auto viterbi = ViterbiTopK(model, 10);
  auto astar = AStarTopK(model, 10);
  ASSERT_EQ(viterbi.size(), 2u);  // 4 states minus the two dead ones
  ASSERT_EQ(astar.size(), 2u);
  for (size_t i = 0; i < viterbi.size(); ++i) {
    EXPECT_GT(viterbi[i].score, 0.0);
    EXPECT_NEAR(viterbi[i].score, astar[i].score, 1e-12);
    EXPECT_EQ(viterbi[i].states, astar[i].states);
  }
}

TEST(ViterbiDecode, EmptyPositionGivesEmptyZeroScorePath) {
  // Regression: with a zero-state position, ViterbiDecodeInto used to
  // return best_score = -1.0 and backtrack into the empty row (an
  // out-of-bounds read). The fixed contract: empty path, score 0.
  HmmModel model = RandomModel(3, 3, 5);
  model.states[1].clear();
  model.emission[1].clear();
  for (auto& row : model.trans[0]) row.clear();
  model.trans[1].clear();

  ViterbiScratch scratch;
  DecodedPath best;
  ViterbiDecodeInto(model, &scratch, &best);
  EXPECT_TRUE(best.states.empty());
  EXPECT_EQ(best.score, 0.0);
  // δ rows are still shaped for the request (A* reuses them).
  ASSERT_GE(scratch.delta.size(), 3u);
  EXPECT_EQ(scratch.delta[1].size(), 0u);

  // Both top-k decoders agree: no complete path exists.
  EXPECT_TRUE(ViterbiTopK(model, 5).empty());
  EXPECT_TRUE(AStarTopK(model, 5).empty());
}

TEST(Decoders, PathsAreDistinct) {
  HmmModel model = RandomModel(3, 4, 55);
  auto result = ViterbiTopK(model, 20);
  for (size_t i = 0; i < result.size(); ++i) {
    for (size_t j = i + 1; j < result.size(); ++j) {
      EXPECT_NE(result[i].states, result[j].states);
    }
  }
  auto astar = AStarTopK(model, 20);
  for (size_t i = 0; i < astar.size(); ++i) {
    for (size_t j = i + 1; j < astar.size(); ++j) {
      EXPECT_NE(astar[i].states, astar[j].states);
    }
  }
}

}  // namespace
}  // namespace kqr
