#include "text/tokenizer.h"

#include <gtest/gtest.h>

#include "text/stopwords.h"

namespace kqr {
namespace {

TEST(Tokenizer, LowercasesAndSplits) {
  Tokenizer t;
  auto toks = t.Tokenize("Efficient XML Query Processing");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0], "efficient");
  EXPECT_EQ(toks[1], "xml");
  EXPECT_EQ(toks[3], "processing");
}

TEST(Tokenizer, SplitsOnPunctuation) {
  Tokenizer t;
  auto toks = t.Tokenize("spatio-temporal, data/streams; (uncertain)");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[0], "spatio");
  EXPECT_EQ(toks[1], "temporal");
  EXPECT_EQ(toks[4], "uncertain");
}

TEST(Tokenizer, DropsShortTokens) {
  Tokenizer t;  // min length 2
  auto toks = t.Tokenize("a x of db");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0], "of");
  EXPECT_EQ(toks[1], "db");
}

TEST(Tokenizer, DropsPureNumbers) {
  Tokenizer t;
  auto toks = t.Tokenize("top 10 results 2012");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0], "top");
  EXPECT_EQ(toks[1], "results");
}

TEST(Tokenizer, KeepsAlphanumericMixes) {
  Tokenizer t;
  auto toks = t.Tokenize("web2 k3b");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0], "web2");
}

TEST(Tokenizer, NumericKeepableWhenConfigured) {
  TokenizerOptions opts;
  opts.drop_numeric = false;
  Tokenizer t(opts);
  auto toks = t.Tokenize("top 10");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[1], "10");
}

TEST(Tokenizer, MinLengthConfigurable) {
  TokenizerOptions opts;
  opts.min_token_length = 4;
  Tokenizer t(opts);
  auto toks = t.Tokenize("the data base system");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0], "data");
}

TEST(Tokenizer, EmptyAndWhitespaceOnly) {
  Tokenizer t;
  EXPECT_TRUE(t.Tokenize("").empty());
  EXPECT_TRUE(t.Tokenize("  \t\n ...!!! ").empty());
}

TEST(Stopwords, DefaultListCatchesCommonWords) {
  StopwordFilter f;
  EXPECT_TRUE(f.IsStopword("the"));
  EXPECT_TRUE(f.IsStopword("and"));
  EXPECT_TRUE(f.IsStopword("of"));
  EXPECT_FALSE(f.IsStopword("database"));
  EXPECT_FALSE(f.IsStopword("xml"));
}

TEST(Stopwords, DomainBoilerplateIncluded) {
  StopwordFilter f;
  EXPECT_TRUE(f.IsStopword("towards"));
  EXPECT_TRUE(f.IsStopword("approach"));
}

TEST(Stopwords, CustomListAndAdd) {
  StopwordFilter f(std::unordered_set<std::string>{"foo"});
  EXPECT_TRUE(f.IsStopword("foo"));
  EXPECT_FALSE(f.IsStopword("the"));
  f.Add("bar");
  EXPECT_TRUE(f.IsStopword("bar"));
}

}  // namespace
}  // namespace kqr
