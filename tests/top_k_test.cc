#include "common/top_k.h"

#include <gtest/gtest.h>

#include <string>

namespace kqr {
namespace {

TEST(TopK, KeepsHighestScores) {
  TopK<int> top(3);
  for (int i = 0; i < 10; ++i) top.Add(i, i);
  auto sorted = top.TakeSorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].first, 9);
  EXPECT_EQ(sorted[1].first, 8);
  EXPECT_EQ(sorted[2].first, 7);
}

TEST(TopK, SortedDescending) {
  TopK<std::string> top(5);
  top.Add(0.5, "mid");
  top.Add(0.9, "high");
  top.Add(0.1, "low");
  auto sorted = top.TakeSorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].first, "high");
  EXPECT_EQ(sorted[1].first, "mid");
  EXPECT_EQ(sorted[2].first, "low");
  EXPECT_DOUBLE_EQ(sorted[0].second, 0.9);
}

TEST(TopK, ZeroCapacityRejectsEverything) {
  TopK<int> top(0);
  EXPECT_FALSE(top.Add(1.0, 1));
  EXPECT_TRUE(top.TakeSorted().empty());
}

TEST(TopK, AddReportsRetention) {
  TopK<int> top(2);
  EXPECT_TRUE(top.Add(1.0, 1));
  EXPECT_TRUE(top.Add(2.0, 2));
  EXPECT_FALSE(top.Add(0.5, 3));  // below the floor
  EXPECT_TRUE(top.Add(3.0, 4));   // evicts 1.0
  auto sorted = top.TakeSorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].first, 4);
  EXPECT_EQ(sorted[1].first, 2);
}

TEST(TopK, TieKeepsEarlierItem) {
  TopK<int> top(1);
  top.Add(1.0, 100);
  EXPECT_FALSE(top.Add(1.0, 200));  // same score: earlier wins
  auto sorted = top.TakeSorted();
  ASSERT_EQ(sorted.size(), 1u);
  EXPECT_EQ(sorted[0].first, 100);
}

TEST(TopK, StableOrderAmongTies) {
  TopK<int> top(4);
  top.Add(1.0, 1);
  top.Add(1.0, 2);
  top.Add(1.0, 3);
  top.Add(2.0, 4);
  auto sorted = top.TakeSorted();
  ASSERT_EQ(sorted.size(), 4u);
  EXPECT_EQ(sorted[0].first, 4);
  // Insertion order preserved among the 1.0 ties.
  EXPECT_EQ(sorted[1].first, 1);
  EXPECT_EQ(sorted[2].first, 2);
  EXPECT_EQ(sorted[3].first, 3);
}

TEST(TopK, MinScoreTracksFloor) {
  TopK<int> top(2);
  top.Add(5.0, 1);
  top.Add(7.0, 2);
  EXPECT_TRUE(top.full());
  EXPECT_DOUBLE_EQ(top.MinScore(), 5.0);
  top.Add(6.0, 3);
  EXPECT_DOUBLE_EQ(top.MinScore(), 6.0);
}

class TopKSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(TopKSweep, MatchesFullSortForRandomInput) {
  const size_t k = GetParam();
  // Deterministic pseudo-random scores.
  std::vector<double> scores;
  uint64_t x = 88172645463325252ULL;
  for (int i = 0; i < 200; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    scores.push_back(static_cast<double>(x % 10007));
  }
  TopK<int> top(k);
  for (size_t i = 0; i < scores.size(); ++i) {
    top.Add(scores[i], static_cast<int>(i));
  }
  auto got = top.TakeSorted();

  std::vector<double> sorted = scores;
  std::sort(sorted.rbegin(), sorted.rend());
  ASSERT_EQ(got.size(), std::min(k, scores.size()));
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i].second, sorted[i]) << "rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, TopKSweep,
                         ::testing::Values(1, 2, 5, 10, 50, 200, 500));

}  // namespace
}  // namespace kqr
