// Test harness for spawning real kqr_shardd processes (multi-process
// suites: shard_fault_test.cc, sharded_e2e_test.cc, bench/sharded_serving).
//
// Lifetime contract (examples/kqr_shardd.cpp): the child serves until its
// stdin reaches EOF, so the harness holds the write end of a pipe on the
// child's stdin — Terminate() is "close the pipe, wait", and a crashed
// test cannot orphan shards because the child also arms
// PR_SET_PDEATHSIG(SIGKILL). The child prints exactly one line,
// "KQR_SHARDD LISTENING <port>", which the harness parses to learn the
// ephemeral port.

#pragma once

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

namespace kqr {

#ifndef KQR_SHARDD_PATH
#error "build must define KQR_SHARDD_PATH (tests/CMakeLists.txt)"
#endif

/// \brief One spawned kqr_shardd child: pid, bound port, and the pipe
/// whose closure is the shutdown signal.
class ShardProcess {
 public:
  ShardProcess() = default;
  ShardProcess(const ShardProcess&) = delete;
  ShardProcess& operator=(const ShardProcess&) = delete;
  ShardProcess(ShardProcess&& other) noexcept { *this = std::move(other); }
  ShardProcess& operator=(ShardProcess&& other) noexcept {
    if (this != &other) {
      Terminate();
      pid_ = other.pid_;
      stdin_fd_ = other.stdin_fd_;
      port_ = other.port_;
      other.pid_ = -1;
      other.stdin_fd_ = -1;
      other.port_ = 0;
    }
    return *this;
  }
  ~ShardProcess() { Terminate(); }

  /// \brief Spawns kqr_shardd with `args` appended after the binary path
  /// and waits for its LISTENING line. Returns false (with a perror-style
  /// message on stderr) on any spawn failure.
  bool Start(const std::vector<std::string>& args) {
    int to_child[2];   // parent writes, child stdin
    int from_child[2]; // child stdout, parent reads
    // O_CLOEXEC is load-bearing: a later Start()'s fork+exec must not
    // inherit this shard's stdin write end, or "close the pipe" stops
    // meaning EOF while any younger sibling lives. The child's dup2 onto
    // stdin/stdout clears the flag on exactly the ends it needs.
    if (pipe2(to_child, O_CLOEXEC) != 0) return false;
    if (pipe2(from_child, O_CLOEXEC) != 0) {
      close(to_child[0]);
      close(to_child[1]);
      return false;
    }
    const pid_t pid = fork();
    if (pid < 0) {
      close(to_child[0]);
      close(to_child[1]);
      close(from_child[0]);
      close(from_child[1]);
      return false;
    }
    if (pid == 0) {
      dup2(to_child[0], STDIN_FILENO);
      dup2(from_child[1], STDOUT_FILENO);
      close(to_child[0]);
      close(to_child[1]);
      close(from_child[0]);
      close(from_child[1]);
      std::vector<char*> argv;
      argv.push_back(const_cast<char*>(KQR_SHARDD_PATH));
      for (const std::string& a : args) {
        argv.push_back(const_cast<char*>(a.c_str()));
      }
      argv.push_back(nullptr);
      execv(KQR_SHARDD_PATH, argv.data());
      std::perror("execv kqr_shardd");
      _exit(127);
    }
    close(to_child[0]);
    close(from_child[1]);
    pid_ = pid;
    stdin_fd_ = to_child[1];

    // Read the single LISTENING line from the child's stdout. Model
    // build can take a while on a loaded runner; the read blocks until
    // the child either announces or exits (EOF).
    std::string line;
    char c = 0;
    ssize_t n = 0;
    while ((n = read(from_child[0], &c, 1)) == 1 && c != '\n') {
      line.push_back(c);
      if (line.size() > 256) break;
    }
    close(from_child[0]);
    unsigned port = 0;
    if (std::sscanf(line.c_str(), "KQR_SHARDD LISTENING %u", &port) != 1 ||
        port == 0 || port > 65535) {
      std::fprintf(stderr, "shardd announce not understood: \"%s\"\n",
                   line.c_str());
      Terminate();
      return false;
    }
    port_ = static_cast<uint16_t>(port);
    return true;
  }

  uint16_t port() const { return port_; }
  pid_t pid() const { return pid_; }
  bool running() const { return pid_ > 0; }

  /// \brief Graceful shutdown: close the child's stdin (its exit signal)
  /// and reap it. Safe to call repeatedly.
  void Terminate() {
    if (stdin_fd_ >= 0) {
      close(stdin_fd_);
      stdin_fd_ = -1;
    }
    Reap();
  }

  /// \brief Abrupt death, as a fault test wants it: SIGKILL, then reap.
  /// The kernel resets the shard's TCP connections, so the router sees a
  /// hard transport loss rather than an orderly close.
  void Kill() {
    if (pid_ > 0) kill(pid_, SIGKILL);
    if (stdin_fd_ >= 0) {
      close(stdin_fd_);
      stdin_fd_ = -1;
    }
    Reap();
  }

 private:
  void Reap() {
    if (pid_ > 0) {
      int wstatus = 0;
      waitpid(pid_, &wstatus, 0);
      pid_ = -1;
    }
  }

  pid_t pid_ = -1;
  int stdin_fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace kqr
