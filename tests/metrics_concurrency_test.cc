// Concurrency suite for the observability layer: writer threads serve
// reformulation requests against one shared model (racing its lazy
// term-cache) while a reader thread scrapes the metrics registry the
// whole time. Runs under the TSan CI job (see .github/workflows/ci.yml,
// filter includes MetricsConcurrency). Beyond race-freedom, the suite
// asserts no update is lost: after the writers quiesce, every counter and
// histogram must account for exactly the requests that were served.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "core/engine_builder.h"
#include "datagen/dblp_gen.h"
#include "obs/metrics.h"

namespace kqr {
namespace {

constexpr size_t kWriterThreads = 4;
constexpr size_t kRequestsPerThread = 60;

std::shared_ptr<const ServingModel> MakeLazyModel() {
  DblpOptions corpus_options;
  corpus_options.num_authors = 80;
  corpus_options.num_papers = 240;
  corpus_options.num_venues = 12;
  corpus_options.seed = 21;
  auto corpus = GenerateDblp(corpus_options);
  KQR_CHECK(corpus.ok());
  // Lazy build: requests race to prepare terms, which is exactly the
  // contention the term-cache hit/miss counters must survive.
  auto model = EngineBuilder().Build(std::move(corpus->db));
  KQR_CHECK(model.ok());
  return std::move(model).ValueOrDie();
}

TEST(MetricsConcurrency, NoLostUpdatesUnderConcurrentScrapes) {
  const std::shared_ptr<const ServingModel> shared = MakeLazyModel();
  const ServingModel& model = *shared;
  ASSERT_NE(model.metrics_registry(), nullptr);

  auto queries = model.ResolveQuery("uncertain query");
  ASSERT_TRUE(queries.ok());
  const std::vector<TermId> query = *queries;

  const uint64_t base_requests =
      model.MetricsNow().CounterValue("kqr_requests_total");

  std::atomic<bool> done{false};
  std::atomic<size_t> scrapes{0};
  std::atomic<size_t> monotonicity_violations{0};

  // Reader: scrape continuously while writers run; the requests-total
  // counter may lag in-flight increments but must never move backwards.
  std::thread reader([&]() {
    uint64_t last = 0;
    while (!done.load(std::memory_order_acquire)) {
      const MetricsSnapshot snap = model.MetricsNow();
      const uint64_t now = snap.CounterValue("kqr_requests_total");
      if (now < last) {
        monotonicity_violations.fetch_add(1, std::memory_order_relaxed);
      }
      last = now;
      scrapes.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::vector<std::thread> writers;
  for (size_t w = 0; w < kWriterThreads; ++w) {
    writers.emplace_back([&]() {
      RequestContext ctx;
      for (size_t i = 0; i < kRequestsPerThread; ++i) {
        const auto ranking = model.ReformulateTerms(query, 8, &ctx);
        KQR_CHECK(ranking.ok()) << ranking.status().ToString();
        KQR_CHECK(!ranking->empty());
      }
    });
  }
  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(monotonicity_violations.load(), 0u);
  EXPECT_GT(scrapes.load(), 0u);

  // Writers quiesced: every shard must now be visible and sum exactly.
  const MetricsSnapshot snap = model.MetricsNow();
  const uint64_t served = kWriterThreads * kRequestsPerThread;
  EXPECT_EQ(snap.CounterValue("kqr_requests_total") - base_requests,
            served);

  const HistogramSnapshot* latency = snap.Histogram("kqr_request_seconds");
  ASSERT_NE(latency, nullptr);
  EXPECT_GE(latency->count, served);
  uint64_t bucket_total = 0;
  for (uint64_t c : latency->counts) bucket_total += c;
  EXPECT_EQ(bucket_total, latency->count)
      << "histogram buckets lost an observation";

  // The lazy term-cache prepares each term exactly once no matter how
  // many threads raced for it: misses == distinct prepared terms.
  EXPECT_EQ(snap.CounterValue("kqr_term_cache_misses_total"),
            model.PreparedTerms().size());
}

TEST(MetricsConcurrency, RawPrimitivesExactUnderContention) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("kqr_stress_total");
  LatencyHistogram* histogram = registry.GetHistogram("kqr_stress_seconds");

  constexpr size_t kThreads = 8;
  constexpr uint64_t kOps = 20000;
  std::atomic<bool> done{false};
  std::thread reader([&]() {
    while (!done.load(std::memory_order_acquire)) {
      registry.Snapshot();
    }
  });
  std::vector<std::thread> writers;
  for (size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t]() {
      for (uint64_t i = 0; i < kOps; ++i) {
        counter->Increment();
        histogram->Observe(1e-6 * static_cast<double>(t + 1));
      }
    });
  }
  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(counter->Value(), kThreads * kOps);
  const HistogramSnapshot snap = histogram->Snapshot();
  EXPECT_EQ(snap.count, kThreads * kOps);
  uint64_t bucket_total = 0;
  for (uint64_t c : snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.count);
}

}  // namespace
}  // namespace kqr
