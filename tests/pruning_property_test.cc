// Property tests for bound-based decode pruning (DESIGN.md "Bound-based
// pruning"): across randomized HMM shapes — zero-heavy transitions, zero
// emission rows, empty positions, single-position models — both decoders
// must return bit-identical paths and scores with pruning forced on vs.
// off, while the work counters only ever shrink.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/astar_topk.h"
#include "core/viterbi_topk.h"

namespace kqr {
namespace {

struct ModelShape {
  size_t m, n, k;
  uint64_t seed;
  double zero_trans;     // fraction of zeroed transition entries
  double zero_emission;  // fraction of zeroed emission entries
  int empty_position;    // position with zero states (-1: none)
};

HmmModel BuildModel(const ModelShape& p) {
  Rng rng(p.seed);
  HmmModel model;
  model.states.assign(p.m, std::vector<CandidateState>(p.n));
  model.emission.assign(p.m, std::vector<double>(p.n));
  if (p.empty_position >= 0) {
    model.states[p.empty_position].clear();
    model.emission[p.empty_position].clear();
  }
  model.pi.resize(model.num_states(0));
  for (size_t i = 0; i < model.num_states(0); ++i) {
    model.pi[i] = 0.1 + rng.NextDouble();
  }
  for (size_t c = 0; c < p.m; ++c) {
    for (size_t i = 0; i < model.num_states(c); ++i) {
      model.states[c][i].term = static_cast<TermId>(c * p.n + i);
      model.emission[c][i] = rng.NextDouble() < p.zero_emission
                                 ? 0.0
                                 : 0.05 + rng.NextDouble();
    }
  }
  model.trans.resize(p.m > 0 ? p.m - 1 : 0);
  for (size_t c = 0; c + 1 < p.m; ++c) {
    model.trans[c].assign(model.num_states(c),
                          std::vector<double>(model.num_states(c + 1)));
    for (size_t i = 0; i < model.num_states(c); ++i) {
      for (size_t j = 0; j < model.num_states(c + 1); ++j) {
        model.trans[c][i][j] = rng.NextDouble() < p.zero_trans
                                   ? 0.0
                                   : 0.05 + rng.NextDouble();
      }
    }
  }
  return model;
}

void ExpectIdentical(const std::vector<DecodedPath>& on,
                     const std::vector<DecodedPath>& off) {
  ASSERT_EQ(on.size(), off.size());
  for (size_t i = 0; i < on.size(); ++i) {
    // Bit-exact, not approximate: pruning must not change a single
    // arithmetic operation on any surviving path.
    EXPECT_EQ(on[i].score, off[i].score) << "rank " << i;
    EXPECT_EQ(on[i].states, off[i].states) << "rank " << i;
  }
}

class PruningSweep : public ::testing::TestWithParam<ModelShape> {};

TEST_P(PruningSweep, ViterbiPrunedMatchesUnpruned) {
  HmmModel model = BuildModel(GetParam());
  ViterbiStats on_stats, off_stats;
  auto on = ViterbiTopK(model, GetParam().k, nullptr, &on_stats, true);
  auto off = ViterbiTopK(model, GetParam().k, nullptr, &off_stats, false);
  ExpectIdentical(on, off);
  EXPECT_EQ(off_stats.extensions_pruned, 0u);
  EXPECT_LE(on_stats.extensions_scored, off_stats.extensions_scored);
}

TEST_P(PruningSweep, AStarPrunedMatchesUnpruned) {
  HmmModel model = BuildModel(GetParam());
  AStarStats on_stats, off_stats;
  auto on = AStarTopK(model, GetParam().k, &on_stats, nullptr, true);
  auto off = AStarTopK(model, GetParam().k, &off_stats, nullptr, false);
  ExpectIdentical(on, off);
  EXPECT_EQ(off_stats.nodes_pruned, 0u);
  // f is exact, so a θ-pruned node could never pop before the k-th
  // completion: expansions never increase, generations only shrink.
  EXPECT_LE(on_stats.nodes_expanded, off_stats.nodes_expanded);
  EXPECT_LE(on_stats.nodes_generated, off_stats.nodes_generated);
}

TEST_P(PruningSweep, DecodersAgreeUnderPruning) {
  HmmModel model = BuildModel(GetParam());
  auto viterbi = ViterbiTopK(model, GetParam().k);
  auto astar = AStarTopK(model, GetParam().k);
  // Both prune by default and share one output contract: the same
  // positive-score paths in the same order.
  ASSERT_EQ(viterbi.size(), astar.size());
  for (size_t i = 0; i < viterbi.size(); ++i) {
    EXPECT_NEAR(viterbi[i].score, astar[i].score, 1e-12) << "rank " << i;
    EXPECT_GT(viterbi[i].score, 0.0);
  }
}

TEST_P(PruningSweep, ScratchReuseIsBitStable) {
  // A warm scratch (stale slots from a previous, differently-shaped
  // request) must not leak into results.
  HmmModel big = BuildModel(ModelShape{6, 8, 10, 4242, 0.2, 0.0, -1});
  HmmModel model = BuildModel(GetParam());
  ViterbiScratch scratch;
  (void)ViterbiTopK(big, 12, &scratch);
  auto warm = ViterbiTopK(model, GetParam().k, &scratch);
  auto cold = ViterbiTopK(model, GetParam().k);
  ExpectIdentical(warm, cold);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PruningSweep,
    ::testing::Values(
        // Dense models of growing depth.
        ModelShape{1, 5, 3, 101, 0.0, 0.0, -1},
        ModelShape{2, 6, 5, 102, 0.0, 0.0, -1},
        ModelShape{4, 5, 10, 103, 0.0, 0.0, -1},
        ModelShape{6, 4, 8, 104, 0.0, 0.0, -1},
        ModelShape{8, 6, 10, 105, 0.0, 0.0, -1},
        // Zero-heavy transitions (stress the edge <= 0 skip).
        ModelShape{4, 5, 7, 106, 0.5, 0.0, -1},
        ModelShape{5, 4, 10, 107, 0.8, 0.0, -1},
        // Zero emission rows (states that can never be visited).
        ModelShape{4, 5, 6, 108, 0.2, 0.4, -1},
        ModelShape{3, 6, 12, 109, 0.0, 0.6, -1},
        // k larger than the positive path space.
        ModelShape{2, 3, 50, 110, 0.5, 0.3, -1},
        ModelShape{1, 4, 20, 111, 0.0, 0.5, -1},
        // Empty positions: no complete path exists at all.
        ModelShape{3, 4, 5, 112, 0.0, 0.0, 1},
        ModelShape{4, 4, 5, 113, 0.3, 0.0, 0},
        ModelShape{2, 5, 3, 114, 0.0, 0.2, 1}));

TEST(PruningDegenerate, EmptyPositionYieldsNoPaths) {
  HmmModel model = BuildModel(ModelShape{3, 4, 5, 7, 0.0, 0.0, 1});
  EXPECT_TRUE(ViterbiTopK(model, 5).empty());
  EXPECT_TRUE(AStarTopK(model, 5).empty());
  ViterbiScratch scratch;
  DecodedPath best;
  ViterbiDecodeInto(model, &scratch, &best);
  EXPECT_TRUE(best.states.empty());
  EXPECT_EQ(best.score, 0.0);
}

TEST(PruningDegenerate, StatsCountersDropOnDeepDenseModels) {
  // On a dense model with k much smaller than the per-cell fan-in the
  // bound must actually fire — this is the "counters drop measurably"
  // half of the acceptance criterion, at unit scale.
  HmmModel model = BuildModel(ModelShape{8, 12, 3, 909, 0.0, 0.0, -1});
  ViterbiStats on_stats, off_stats;
  auto on = ViterbiTopK(model, 3, nullptr, &on_stats, true);
  auto off = ViterbiTopK(model, 3, nullptr, &off_stats, false);
  ExpectIdentical(on, off);
  EXPECT_GT(on_stats.extensions_pruned, 0u);
  EXPECT_LT(on_stats.extensions_scored, off_stats.extensions_scored);

  AStarStats astar_on, astar_off;
  auto a_on = AStarTopK(model, 3, &astar_on, nullptr, true);
  auto a_off = AStarTopK(model, 3, &astar_off, nullptr, false);
  ExpectIdentical(a_on, a_off);
  EXPECT_GT(astar_on.nodes_pruned, 0u);
  EXPECT_LT(astar_on.nodes_generated, astar_off.nodes_generated);
}

}  // namespace
}  // namespace kqr
