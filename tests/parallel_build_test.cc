// The tentpole guarantee of the parallel offline stage: building with N
// worker threads produces bit-for-bit the same indexes as the serial
// build, and per-worker scratch reuse never leaks state between walks.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "closeness/closeness_index.h"
#include "common/logging.h"
#include "datagen/dblp_gen.h"
#include "graph/graph_stats.h"
#include "graph/tat_builder.h"
#include "text/inverted_index.h"
#include "walk/similarity_index.h"

namespace kqr {
namespace {

class ParallelBuildTest : public ::testing::Test {
 protected:
  ParallelBuildTest() {
    DblpOptions options;
    options.num_authors = 150;
    options.num_papers = 500;
    options.num_venues = 24;
    options.seed = 99;
    auto corpus = GenerateDblp(options);
    KQR_CHECK(corpus.ok());
    db_ = std::make_unique<Database>(std::move(corpus->db));
    auto index = InvertedIndex::Build(*db_, analyzer_, &vocab_);
    KQR_CHECK(index.ok());
    index_ = std::make_unique<InvertedIndex>(std::move(*index));
    auto graph = BuildTatGraph(*db_, vocab_, *index_);
    KQR_CHECK(graph.ok());
    graph_ = std::make_unique<TatGraph>(std::move(*graph));
    stats_ = std::make_unique<GraphStats>(*graph_);
  }

  std::vector<TermId> AllTerms() const {
    std::vector<TermId> all;
    all.reserve(vocab_.size());
    for (TermId t = 0; t < vocab_.size(); ++t) all.push_back(t);
    return all;
  }

  Analyzer analyzer_;
  Vocabulary vocab_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<InvertedIndex> index_;
  std::unique_ptr<TatGraph> graph_;
  std::unique_ptr<GraphStats> stats_;
};

void ExpectIdentical(const Vocabulary& vocab, const SimilarityIndex& a,
                     const SimilarityIndex& b) {
  ASSERT_EQ(a.size(), b.size());
  for (TermId t = 0; t < vocab.size(); ++t) {
    ASSERT_EQ(a.Contains(t), b.Contains(t)) << "term " << t;
    const auto& la = a.Lookup(t);
    const auto& lb = b.Lookup(t);
    ASSERT_EQ(la.size(), lb.size()) << "term " << t;
    for (size_t i = 0; i < la.size(); ++i) {
      EXPECT_EQ(la[i].term, lb[i].term) << "term " << t << " rank " << i;
      // Bit-for-bit: exact double equality, not a tolerance.
      EXPECT_EQ(la[i].score, lb[i].score) << "term " << t << " rank " << i;
    }
  }
}

TEST_F(ParallelBuildTest, SimilarityIndexIdenticalAcrossThreadCounts) {
  SimilarityIndexOptions serial;
  serial.num_threads = 1;
  SimilarityIndex reference =
      SimilarityIndex::BuildFor(*graph_, *stats_, AllTerms(), serial);
  ASSERT_GT(reference.size(), 0u);

  for (size_t threads : {2, 3, 4, 8}) {
    SimilarityIndexOptions options;
    options.num_threads = threads;
    SimilarityIndex built =
        SimilarityIndex::BuildFor(*graph_, *stats_, AllTerms(), options);
    ExpectIdentical(vocab_, reference, built);
  }
}

TEST_F(ParallelBuildTest, ClosenessIndexIdenticalAcrossThreadCounts) {
  std::vector<TermId> terms = AllTerms();
  terms.resize(std::min<size_t>(terms.size(), 300));

  ClosenessIndexOptions serial;
  serial.num_threads = 1;
  ClosenessIndex reference =
      ClosenessIndex::BuildFor(*graph_, terms, serial);

  ClosenessIndexOptions parallel;
  parallel.num_threads = 4;
  ClosenessIndex built = ClosenessIndex::BuildFor(*graph_, terms, parallel);

  ASSERT_EQ(reference.size(), built.size());
  for (TermId t : terms) {
    const auto& la = reference.Lookup(t);
    const auto& lb = built.Lookup(t);
    ASSERT_EQ(la.size(), lb.size()) << "term " << t;
    for (size_t i = 0; i < la.size(); ++i) {
      EXPECT_EQ(la[i].term, lb[i].term);
      EXPECT_EQ(la[i].closeness, lb[i].closeness);
      EXPECT_EQ(la[i].distance, lb[i].distance);
      EXPECT_EQ(reference.ClosenessOf(t, la[i].term),
                built.ClosenessOf(t, la[i].term));
    }
  }
}

TEST_F(ParallelBuildTest, ExtractorScratchReuseDoesNotLeakBetweenWalks) {
  // Drive one extractor over many consecutive terms (reusing its engine
  // scratch) and compare each list against a fresh extractor's.
  SimilarityExtractor reused(*graph_, *stats_);
  size_t compared = 0;
  for (TermId t = 0; t < vocab_.size() && compared < 25; ++t) {
    NodeId node = graph_->NodeOfTerm(t);
    if (graph_->Degree(node) == 0) continue;
    auto warm = reused.TopSimilar(node, 20);
    SimilarityExtractor fresh(*graph_, *stats_);
    auto cold = fresh.TopSimilar(node, 20);
    ASSERT_EQ(warm.size(), cold.size()) << "term " << t;
    for (size_t i = 0; i < warm.size(); ++i) {
      EXPECT_EQ(warm[i].node, cold[i].node) << "term " << t;
      EXPECT_EQ(warm[i].score, cold[i].score) << "term " << t;
    }
    ++compared;
  }
  EXPECT_GE(compared, 10u);
}

TEST_F(ParallelBuildTest, BuildStatsAreFilled) {
  SimilarityIndexOptions options;
  options.num_threads = 2;
  OfflineBuildStats stats;
  SimilarityIndex built =
      SimilarityIndex::BuildFor(*graph_, *stats_, AllTerms(), options,
                                &stats);
  EXPECT_EQ(stats.terms_total, vocab_.size());
  EXPECT_EQ(stats.terms_built + stats.terms_skipped, stats.terms_total);
  EXPECT_EQ(stats.terms_built, built.size());
  EXPECT_EQ(stats.walks_run, stats.terms_built);
  EXPECT_GT(stats.walk_iterations, stats.walks_run);
  EXPECT_EQ(stats.threads, 2u);
  EXPECT_GT(stats.wall_ms, 0.0);

  OfflineBuildStats close_stats;
  std::vector<TermId> some(AllTerms());
  some.resize(std::min<size_t>(some.size(), 50));
  ClosenessIndexOptions close_options;
  close_options.num_threads = 2;
  ClosenessIndex::BuildFor(*graph_, some, close_options, &close_stats);
  EXPECT_EQ(close_stats.terms_total, some.size());
  EXPECT_EQ(close_stats.terms_built, some.size());
  EXPECT_EQ(close_stats.threads, 2u);
  EXPECT_GT(close_stats.wall_ms, 0.0);
}

}  // namespace
}  // namespace kqr
