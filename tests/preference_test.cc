// Focused tests of the contextual preference construction (Algorithm 1
// lines 1–6): field grouping, idf weighting, self mass, truncation.

#include "walk/preference.h"

#include <gtest/gtest.h>

#include "graph/tat_builder.h"
#include "test_fixtures.h"

namespace kqr {
namespace {

using testing_fixtures::MicroCorpus;

class PreferenceTest : public ::testing::Test {
 protected:
  PreferenceTest() : corpus_(MicroCorpus::Make()) {
    auto graph =
        BuildTatGraph(corpus_.db, corpus_.vocab, corpus_.index,
                      TatBuilderOptions{.max_doc_frequency_fraction = 1.0});
    KQR_CHECK(graph.ok());
    graph_ = std::make_unique<TatGraph>(std::move(*graph));
    stats_ = std::make_unique<GraphStats>(*graph_);
  }

  double WeightOf(const PreferenceVector& r, NodeId node) {
    for (const auto& [n, w] : r.entries) {
      if (n == node) return w;
    }
    return 0.0;
  }

  MicroCorpus corpus_;
  std::unique_ptr<TatGraph> graph_;
  std::unique_ptr<GraphStats> stats_;
};

TEST_F(PreferenceTest, BasicIsOneHot) {
  PreferenceVector r = MakeBasicPreference(42);
  ASSERT_EQ(r.entries.size(), 1u);
  EXPECT_EQ(r.entries[0].first, 42u);
  EXPECT_DOUBLE_EQ(r.entries[0].second, 1.0);
}

TEST_F(PreferenceTest, NormalizeScalesToOne) {
  PreferenceVector r;
  r.entries = {{0, 2.0}, {1, 6.0}};
  r.Normalize();
  EXPECT_DOUBLE_EQ(r.entries[0].second, 0.25);
  EXPECT_DOUBLE_EQ(r.entries[1].second, 0.75);
}

TEST_F(PreferenceTest, NormalizeZeroVectorNoop) {
  PreferenceVector r;
  r.entries = {{0, 0.0}};
  r.Normalize();
  EXPECT_DOUBLE_EQ(r.entries[0].second, 0.0);
}

TEST_F(PreferenceTest, SelfWeightHonored) {
  NodeId start = graph_->NodeOfTerm(corpus_.Title("uncertain"));
  for (double self : {0.0, 0.2, 0.7}) {
    ContextualPreferenceOptions options;
    options.self_weight = self;
    PreferenceVector r =
        MakeContextualPreference(*graph_, *stats_, start, options);
    EXPECT_NEAR(WeightOf(r, start), self, 1e-12) << "self=" << self;
  }
}

TEST_F(PreferenceTest, ContextWeightsFollowEdgeWeightTimesIdf) {
  // "query" appears once in p0 and once in p1 (equal edge weights), so
  // the context split between the two papers follows their idf; the
  // rarer-connected paper gets at least as much mass.
  NodeId start = graph_->NodeOfTerm(corpus_.Title("query"));
  PreferenceVector r = MakeContextualPreference(*graph_, *stats_, start);
  NodeId p0 = graph_->NodeOfTuple({2, 0});
  NodeId p1 = graph_->NodeOfTuple({2, 1});
  double w0 = WeightOf(r, p0);
  double w1 = WeightOf(r, p1);
  ASSERT_GT(w0, 0.0);
  ASSERT_GT(w1, 0.0);
  double idf0 = stats_->Idf(p0);
  double idf1 = stats_->Idf(p1);
  // Same field, same frequency ⇒ ratio of weights == ratio of idfs.
  EXPECT_NEAR(w0 / w1, idf0 / idf1, 1e-9);
}

TEST_F(PreferenceTest, TupleContextSpansFields) {
  // A tuple node's context mixes classes: its terms and FK neighbors.
  NodeId paper = graph_->NodeOfTuple({2, 0});
  PreferenceVector r = MakeContextualPreference(*graph_, *stats_, paper);
  bool has_term = false, has_tuple = false;
  for (const auto& [node, w] : r.entries) {
    if (node == paper) continue;
    if (graph_->KindOf(node) == NodeKind::kTerm) has_term = true;
    if (graph_->KindOf(node) == NodeKind::kTuple) has_tuple = true;
  }
  EXPECT_TRUE(has_term);
  EXPECT_TRUE(has_tuple);
}

TEST_F(PreferenceTest, FieldCardinalityDownweightsCrowdedFields) {
  // For paper p0: its 3 title terms share one field (|F| = 3), its venue
  // and writes are their own classes. Per-entry mass in the crowded
  // field must reflect the 1/|F| factor: total title-term mass is
  // comparable to a single venue-tuple's, not 3×.
  NodeId paper = graph_->NodeOfTuple({2, 0});
  ContextualPreferenceOptions options;
  options.self_weight = 0.0;
  PreferenceVector r =
      MakeContextualPreference(*graph_, *stats_, paper, options);
  double title_mass = 0.0;
  size_t title_terms = 0;
  for (const auto& [node, w] : r.entries) {
    if (graph_->KindOf(node) == NodeKind::kTerm) {
      title_mass += w;
      ++title_terms;
    }
  }
  ASSERT_EQ(title_terms, 3u);  // "uncertain data query"
  // Without the 1/|F_i| factor title terms would hold ~3× the weight of
  // each singleton-field neighbor; with it, they stay bounded.
  EXPECT_LT(title_mass, 0.8);
}

TEST_F(PreferenceTest, MaxNodesPerFieldKeepsTopWeighted) {
  NodeId paper = graph_->NodeOfTuple({2, 0});
  ContextualPreferenceOptions unlimited;
  unlimited.self_weight = 0.0;
  PreferenceVector full =
      MakeContextualPreference(*graph_, *stats_, paper, unlimited);

  ContextualPreferenceOptions limited = unlimited;
  limited.max_nodes_per_field = 1;
  PreferenceVector truncated =
      MakeContextualPreference(*graph_, *stats_, paper, limited);
  EXPECT_LT(truncated.entries.size(), full.entries.size());

  // Every retained node must be the max-weight representative of its
  // class in the full vector.
  for (const auto& [node, w] : truncated.entries) {
    NodeClass cls = stats_->ClassOf(node);
    for (const auto& [other, ow] : full.entries) {
      if (stats_->ClassOf(other) != cls) continue;
      EXPECT_GE(WeightOf(full, node), ow * (1.0 - 1e-9))
          << "node " << node << " vs " << other;
    }
  }
}

}  // namespace
}  // namespace kqr
