#include "core/engine.h"

#include <gtest/gtest.h>

#include "test_fixtures.h"

namespace kqr {
namespace {

std::unique_ptr<ReformulationEngine> MakeEngine(EngineOptions options = {}) {
  auto engine = ReformulationEngine::Build(
      testing_fixtures::MakeMicroDblp(), options);
  KQR_CHECK(engine.ok()) << engine.status().ToString();
  return std::move(engine).ValueOrDie();
}

TEST(Engine, BuildsAllComponents) {
  auto engine = MakeEngine();
  EXPECT_GT(engine->vocab().size(), 0u);
  EXPECT_GT(engine->graph().num_nodes(), 0u);
  EXPECT_GT(engine->graph().num_edges(), 0u);
  EXPECT_EQ(engine->stats().num_nodes(), engine->graph().num_nodes());
  EXPECT_EQ(engine->db().name(), "micro");
}

TEST(Engine, RejectsCorruptDatabase) {
  Database db = testing_fixtures::MakeMicroDblp();
  Table* writes = db.FindTable("writes");
  ASSERT_TRUE(writes
                  ->Insert({Value(int64_t{99}), Value(int64_t{77}),
                            Value(int64_t{0})})
                  .ok());  // author 77 does not exist
  auto engine = ReformulationEngine::Build(std::move(db));
  EXPECT_TRUE(engine.status().IsCorruption());
}

TEST(Engine, ResolveQueryPicksTerms) {
  auto engine = MakeEngine();
  auto terms = engine->ResolveQuery("uncertain query");
  ASSERT_TRUE(terms.ok()) << terms.status().ToString();
  EXPECT_EQ(terms->size(), 2u);
}

TEST(Engine, ResolveQueryFailsOnUnknownKeyword) {
  auto engine = MakeEngine();
  EXPECT_TRUE(engine->ResolveQuery("zebra").status().IsNotFound());
  EXPECT_TRUE(engine->ResolveQuery("").status().IsInvalidArgument());
}

TEST(Engine, EndToEndReformulate) {
  auto engine = MakeEngine();
  auto result = engine->Reformulate("uncertain query", 5);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->empty());
  for (const auto& q : *result) {
    EXPECT_EQ(q.terms.size(), 2u);
    EXPECT_GT(q.score, 0.0);
  }
}

TEST(Engine, LazyOfflineMatchesEagerResults) {
  auto lazy = MakeEngine();
  EngineOptions eager_options;
  eager_options.precompute_offline = true;
  auto eager = MakeEngine(eager_options);
  auto a = lazy->Reformulate("uncertain query", 5);
  auto b = eager->Reformulate("uncertain query", 5);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].terms, (*b)[i].terms);
    EXPECT_NEAR((*a)[i].score, (*b)[i].score, 1e-12);
  }
}

TEST(Engine, EnsureTermIdempotent) {
  auto engine = MakeEngine();
  auto terms = engine->ResolveQuery("uncertain");
  ASSERT_TRUE(terms.ok());
  engine->EnsureTerm((*terms)[0]);
  size_t size_after_first = engine->similarity_index().size();
  engine->EnsureTerm((*terms)[0]);
  EXPECT_EQ(engine->similarity_index().size(), size_after_first);
}

TEST(Engine, CooccurrenceModeBuilds) {
  EngineOptions options;
  options.use_cooccurrence_similarity = true;
  auto engine = MakeEngine(options);
  auto result = engine->Reformulate("uncertain query", 5);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->empty());
}

TEST(Engine, SearchEndToEnd) {
  auto engine = MakeEngine();
  auto outcome = engine->Search("uncertain query");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_GT(outcome->total_results, 0u);
}

TEST(Engine, SearchUnknownKeywordFails) {
  auto engine = MakeEngine();
  EXPECT_TRUE(engine->Search("zebra").status().IsNotFound());
}

TEST(Engine, CountResultsSkipsVoidPositions) {
  auto engine = MakeEngine();
  auto terms = engine->ResolveQuery("uncertain query");
  ASSERT_TRUE(terms.ok());
  std::vector<TermId> with_void = *terms;
  with_void.push_back(kInvalidTermId);
  EXPECT_EQ(engine->CountResults(with_void),
            engine->CountResults(*terms));
}

TEST(Engine, QueryFromTermsRoundTrip) {
  auto engine = MakeEngine();
  auto terms = engine->ResolveQuery("uncertain query");
  ASSERT_TRUE(terms.ok());
  KeywordQuery q = engine->QueryFromTerms(*terms);
  ASSERT_EQ(q.size(), 2u);
  EXPECT_TRUE(q.FullyResolved());
}

TEST(Engine, MultiWordAuthorQueryReformulates) {
  auto engine = MakeEngine();
  auto result = engine->Reformulate("alice smith mining", 5);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Candidates exist (carol wu collaborates via p3).
  EXPECT_FALSE(result->empty());
}

}  // namespace
}  // namespace kqr
