#include <gtest/gtest.h>

#include "core/engine_builder.h"
#include "test_fixtures.h"

namespace kqr {
namespace {

std::shared_ptr<const ServingModel> MakeModel(EngineOptions options = {}) {
  auto model =
      EngineBuilder(options).Build(testing_fixtures::MakeMicroDblp());
  KQR_CHECK(model.ok()) << model.status().ToString();
  return std::move(model).ValueOrDie();
}

TEST(Engine, BuildsAllComponents) {
  auto model = MakeModel();
  EXPECT_GT(model->vocab().size(), 0u);
  EXPECT_GT(model->graph().num_nodes(), 0u);
  EXPECT_GT(model->graph().num_edges(), 0u);
  EXPECT_EQ(model->stats().num_nodes(), model->graph().num_nodes());
  EXPECT_EQ(model->db().name(), "micro");
}

TEST(Engine, RejectsCorruptDatabase) {
  Database db = testing_fixtures::MakeMicroDblp();
  Table* writes = db.FindTable("writes");
  ASSERT_TRUE(writes
                  ->Insert({Value(int64_t{99}), Value(int64_t{77}),
                            Value(int64_t{0})})
                  .ok());  // author 77 does not exist
  auto model = EngineBuilder().Build(std::move(db));
  EXPECT_TRUE(model.status().IsCorruption());
}

TEST(Engine, BuildRejectsInvalidOptions) {
  // Validate() runs at the construction boundary: a bad configuration
  // fails the build with kInvalidArgument instead of building a model
  // that cannot serve.
  EngineOptions no_states;
  no_states.reformulator.candidates.per_term = 0;
  no_states.reformulator.candidates.include_original = false;
  no_states.reformulator.candidates.include_void = false;
  auto build = EngineBuilder(no_states).Build(
      testing_fixtures::MakeMicroDblp());
  ASSERT_FALSE(build.ok());
  EXPECT_TRUE(build.status().IsInvalidArgument())
      << build.status().ToString();

  EngineOptions empty_lists;
  empty_lists.similarity.list_size = 0;
  EXPECT_TRUE(EngineBuilder(empty_lists)
                  .Build(testing_fixtures::MakeMicroDblp())
                  .status()
                  .IsInvalidArgument());

  EngineOptions bad_lambda;
  bad_lambda.reformulator.hmm.smoothing.lambda = 1.5;
  EXPECT_TRUE(EngineBuilder(bad_lambda)
                  .Build(testing_fixtures::MakeMicroDblp())
                  .status()
                  .IsInvalidArgument());
}

TEST(Engine, EngineOptionsValidateAcceptsDefaults) {
  EXPECT_TRUE(EngineOptions{}.Validate().ok());
}

TEST(Engine, ResolveQueryPicksTerms) {
  auto model = MakeModel();
  auto terms = model->ResolveQuery("uncertain query");
  ASSERT_TRUE(terms.ok()) << terms.status().ToString();
  EXPECT_EQ(terms->size(), 2u);
}

TEST(Engine, ResolveQueryFailsOnUnknownKeyword) {
  auto model = MakeModel();
  EXPECT_TRUE(model->ResolveQuery("zebra").status().IsNotFound());
  EXPECT_TRUE(model->ResolveQuery("").status().IsInvalidArgument());
}

TEST(Engine, EndToEndReformulate) {
  auto model = MakeModel();
  auto result = model->Reformulate("uncertain query", 5);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->empty());
  for (const auto& q : *result) {
    EXPECT_EQ(q.terms.size(), 2u);
    EXPECT_GT(q.score, 0.0);
  }
}

TEST(Engine, LazyOfflineMatchesEagerResults) {
  auto lazy = MakeModel();
  EngineOptions eager_options;
  eager_options.precompute_offline = true;
  auto eager = MakeModel(eager_options);
  EXPECT_FALSE(lazy->fully_prepared());
  EXPECT_TRUE(eager->fully_prepared());
  auto a = lazy->Reformulate("uncertain query", 5);
  auto b = eager->Reformulate("uncertain query", 5);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].terms, (*b)[i].terms);
    EXPECT_NEAR((*a)[i].score, (*b)[i].score, 1e-12);
  }
}

TEST(Engine, EnsureTermIdempotent) {
  auto model = MakeModel();
  auto terms = model->ResolveQuery("uncertain");
  ASSERT_TRUE(terms.ok());
  EXPECT_TRUE(model->EnsureTerm((*terms)[0]));
  size_t size_after_first = model->similarity_index().size();
  EXPECT_FALSE(model->EnsureTerm((*terms)[0]));
  EXPECT_EQ(model->similarity_index().size(), size_after_first);
}

TEST(Engine, EagerModelReportsAllTermsPrepared) {
  EngineOptions options;
  options.precompute_offline = true;
  auto model = MakeModel(options);
  EXPECT_EQ(model->PreparedTerms().size(), model->vocab().size());
  // EnsureTerm on a fully-prepared model never prepares anything new.
  EXPECT_FALSE(model->EnsureTerm(0));
}

TEST(Engine, CooccurrenceModeBuilds) {
  EngineOptions options;
  options.use_cooccurrence_similarity = true;
  auto model = MakeModel(options);
  auto result = model->Reformulate("uncertain query", 5);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->empty());
}

TEST(Engine, SearchEndToEnd) {
  auto model = MakeModel();
  auto outcome = model->Search("uncertain query");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_GT(outcome->total_results, 0u);
}

TEST(Engine, SearchUnknownKeywordFails) {
  auto model = MakeModel();
  EXPECT_TRUE(model->Search("zebra").status().IsNotFound());
}

TEST(Engine, CountResultsSkipsVoidPositions) {
  auto model = MakeModel();
  auto terms = model->ResolveQuery("uncertain query");
  ASSERT_TRUE(terms.ok());
  std::vector<TermId> with_void = *terms;
  with_void.push_back(kInvalidTermId);
  EXPECT_EQ(model->CountResults(with_void), model->CountResults(*terms));
}

TEST(Engine, QueryFromTermsRoundTrip) {
  auto model = MakeModel();
  auto terms = model->ResolveQuery("uncertain query");
  ASSERT_TRUE(terms.ok());
  KeywordQuery q = model->QueryFromTerms(*terms);
  ASSERT_EQ(q.size(), 2u);
  EXPECT_TRUE(q.FullyResolved());
}

TEST(Engine, MultiWordAuthorQueryReformulates) {
  auto model = MakeModel();
  auto result = model->Reformulate("alice smith mining", 5);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Candidates exist (carol wu collaborates via p3).
  EXPECT_FALSE(result->empty());
}

TEST(Engine, ReformulateTermsWithOverridesOptions) {
  auto model = MakeModel();
  auto terms = model->ResolveQuery("uncertain query");
  ASSERT_TRUE(terms.ok());
  ReformulatorOptions narrow = model->options().reformulator;
  narrow.candidates.per_term = 1;
  auto defaults = model->ReformulateTerms(*terms, 5);
  auto narrowed = model->ReformulateTermsWith(narrow, *terms, 5);
  ASSERT_TRUE(defaults.ok()) << defaults.status().ToString();
  ASSERT_TRUE(narrowed.ok()) << narrowed.status().ToString();
  // per_term = 1 leaves only the identity candidate at each position.
  EXPECT_LE(narrowed->size(), defaults->size());
  // The shared model's own options are untouched.
  EXPECT_NE(model->options().reformulator.candidates.per_term, 1u);
}

}  // namespace
}  // namespace kqr
