#include "text/vocabulary.h"

#include <gtest/gtest.h>

namespace kqr {
namespace {

TEST(Vocabulary, RegisterFieldIdempotent) {
  Vocabulary v;
  FieldId a = v.RegisterField("papers", "title", TextRole::kSegmented);
  FieldId b = v.RegisterField("papers", "title", TextRole::kSegmented);
  EXPECT_EQ(a, b);
  EXPECT_EQ(v.num_fields(), 1u);
  EXPECT_EQ(v.field(a).Label(), "papers.title");
  EXPECT_EQ(v.field(a).role, TextRole::kSegmented);
}

TEST(Vocabulary, FindField) {
  Vocabulary v;
  FieldId a = v.RegisterField("authors", "name", TextRole::kAtomic);
  EXPECT_EQ(*v.FindField("authors", "name"), a);
  EXPECT_FALSE(v.FindField("authors", "ghost").has_value());
}

TEST(Vocabulary, InternDedupes) {
  Vocabulary v;
  FieldId f = v.RegisterField("papers", "title", TextRole::kSegmented);
  TermId a = v.Intern(f, "xml");
  TermId b = v.Intern(f, "xml");
  TermId c = v.Intern(f, "tree");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.text(a), "xml");
  EXPECT_EQ(v.field_of(a), f);
}

TEST(Vocabulary, SameTextDifferentFieldsAreDistinctTerms) {
  // Def. 5: "term nodes with same text extracted from different fields are
  // considered as different".
  Vocabulary v;
  FieldId title = v.RegisterField("papers", "title", TextRole::kSegmented);
  FieldId vname = v.RegisterField("venues", "name", TextRole::kAtomic);
  TermId a = v.Intern(title, "database");
  TermId b = v.Intern(vname, "database");
  EXPECT_NE(a, b);
  auto all = v.FindAllFields("database");
  ASSERT_EQ(all.size(), 2u);
}

TEST(Vocabulary, FindByFieldAndText) {
  Vocabulary v;
  FieldId f = v.RegisterField("papers", "title", TextRole::kSegmented);
  TermId a = v.Intern(f, "graph");
  EXPECT_EQ(*v.Find(f, "graph"), a);
  EXPECT_FALSE(v.Find(f, "missing").has_value());
}

TEST(Vocabulary, FindAllFieldsUnknownText) {
  Vocabulary v;
  EXPECT_TRUE(v.FindAllFields("ghost").empty());
}

TEST(Vocabulary, Describe) {
  Vocabulary v;
  FieldId f = v.RegisterField("papers", "title", TextRole::kSegmented);
  TermId a = v.Intern(f, "twig");
  EXPECT_EQ(v.Describe(a), "twig@papers.title");
}

TEST(Vocabulary, DenseIdsInInsertionOrder) {
  Vocabulary v;
  FieldId f = v.RegisterField("t", "c", TextRole::kSegmented);
  EXPECT_EQ(v.Intern(f, "a"), 0u);
  EXPECT_EQ(v.Intern(f, "b"), 1u);
  EXPECT_EQ(v.Intern(f, "c"), 2u);
}

}  // namespace
}  // namespace kqr
