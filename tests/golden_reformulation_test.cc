// Golden end-to-end regression suite: a fixed corpus, a fixed sampled
// query set, and the checked-in top-k reformulations they must produce.
// Any change to tokenization, graph construction, walk scoring, candidate
// generation, smoothing, or decoding that shifts a ranking fails here
// with a line-level diff of what moved.
//
// The fixture lives at tests/golden/reformulation.golden (path baked in
// via KQR_GOLDEN_DIR). To regenerate after an intentional behavior
// change:
//
//   KQR_REGENERATE_GOLDEN=1 ./build/tests/golden_reformulation_test
//
// which rewrites the fixture in the source tree; review the diff like any
// other code change.
//
// Alongside the fixture comparison, the suite proves the two stability
// properties the fixture relies on: rankings are bit-identical across
// consecutive runs on one model, and bit-identical between models whose
// offline indexes were built with 1 thread vs 8.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "core/engine_builder.h"
#include "core/model_file.h"
#include "datagen/dblp_gen.h"
#include "eval/experiment.h"

#ifndef KQR_GOLDEN_DIR
#define KQR_GOLDEN_DIR "tests/golden"
#endif

namespace kqr {
namespace {

constexpr size_t kTopK = 8;
constexpr uint64_t kSamplerSeed = 7001;

DblpOptions GoldenCorpus() {
  DblpOptions options;
  options.num_authors = 150;
  options.num_papers = 500;
  options.num_venues = 24;
  options.seed = 4242;
  return options;
}

std::shared_ptr<const ServingModel> BuildModel(size_t build_threads) {
  auto corpus = GenerateDblp(GoldenCorpus());
  KQR_CHECK(corpus.ok());
  EngineOptions options;
  // Eager build: the fixture must cover the frozen offline products, not
  // whatever subset lazy preparation happened to touch.
  options.precompute_offline = true;
  options.similarity.num_threads = build_threads;
  options.closeness.num_threads = build_threads;
  auto model = EngineBuilder(options).Build(std::move(corpus->db));
  KQR_CHECK(model.ok()) << model.status().ToString();
  return std::move(model).ValueOrDie();
}

/// The reference model (single-thread offline build), shared across
/// tests — eager builds are the expensive part of this suite.
const ServingModel& GoldenModel() {
  static const std::shared_ptr<const ServingModel> model = BuildModel(1);
  return *model;
}

std::vector<std::vector<TermId>> GoldenQueries(const ServingModel& model) {
  QuerySampler sampler(model, kSamplerSeed);
  std::vector<std::vector<TermId>> queries = sampler.SampleQueries(8, 2);
  for (auto& q : sampler.SampleQueries(8, 3)) queries.push_back(std::move(q));
  return queries;
}

/// Stable human-readable term token: "<field-id>:<text>". Vocabulary
/// assignment is deterministic for a fixed corpus, and the field id
/// disambiguates same-text terms from different columns. Void positions
/// (deleted keywords) serialize as "-".
std::string TermToken(const ServingModel& model, TermId t) {
  if (t == kInvalidTermId) return "-";
  return std::to_string(model.vocab().field_of(t)) + ":" +
         std::string(model.vocab().text(t));
}

uint64_t ScoreBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

struct GoldenRanking {
  double score = 0.0;
  std::vector<std::string> terms;
};

struct GoldenEntry {
  std::vector<std::string> query;
  std::vector<GoldenRanking> rankings;
};

std::vector<std::string> SplitTabs(const std::string& line) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= line.size()) {
    size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      out.push_back(line.substr(start));
      break;
    }
    out.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
  return out;
}

/// Runs the golden query set and serializes every ranking.
std::vector<GoldenEntry> ComputeEntries(const ServingModel& model) {
  std::vector<GoldenEntry> entries;
  for (const std::vector<TermId>& query : GoldenQueries(model)) {
    GoldenEntry entry;
    for (TermId t : query) entry.query.push_back(TermToken(model, t));
    auto served = model.ReformulateTerms(query, kTopK);
    KQR_CHECK(served.ok()) << served.status().ToString();
    for (const ReformulatedQuery& r : *served) {
      GoldenRanking ranking;
      ranking.score = r.score;
      for (TermId t : r.terms) ranking.terms.push_back(TermToken(model, t));
      entry.rankings.push_back(std::move(ranking));
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::string GoldenPath() {
  return std::string(KQR_GOLDEN_DIR) + "/reformulation.golden";
}

/// Fixture format (tab-separated; term tokens may contain spaces):
///   query\t<idx>\t<term>...
///   rank\t<i>\t<score %.17g>\t<term>...
void WriteGolden(const std::string& path,
                 const std::vector<GoldenEntry>& entries) {
  std::ofstream out(path);
  KQR_CHECK(out.good()) << "cannot write golden fixture to " << path;
  out << "# Golden reformulation fixture — regenerate with\n"
      << "#   KQR_REGENERATE_GOLDEN=1 ./build/tests/"
         "golden_reformulation_test\n"
      << "# corpus: dblp seed=4242 authors=150 papers=500 venues=24, "
         "eager build\n"
      << "# queries: sampler seed=" << kSamplerSeed
      << ", 8 of length 2 + 8 of length 3, k=" << kTopK << "\n";
  for (size_t qi = 0; qi < entries.size(); ++qi) {
    const GoldenEntry& e = entries[qi];
    out << "query\t" << qi;
    for (const std::string& t : e.query) out << '\t' << t;
    out << '\n';
    for (size_t i = 0; i < e.rankings.size(); ++i) {
      char score[64];
      std::snprintf(score, sizeof(score), "%.17g", e.rankings[i].score);
      out << "rank\t" << i << '\t' << score;
      for (const std::string& t : e.rankings[i].terms) out << '\t' << t;
      out << '\n';
    }
  }
}

std::vector<GoldenEntry> ReadGolden(const std::string& path) {
  std::ifstream in(path);
  KQR_CHECK(in.good()) << "cannot read golden fixture " << path
                       << " — regenerate with KQR_REGENERATE_GOLDEN=1";
  std::vector<GoldenEntry> entries;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields = SplitTabs(line);
    if (fields[0] == "query") {
      KQR_CHECK(fields.size() >= 3) << "bad query line: " << line;
      GoldenEntry entry;
      entry.query.assign(fields.begin() + 2, fields.end());
      entries.push_back(std::move(entry));
    } else if (fields[0] == "rank") {
      KQR_CHECK(!entries.empty() && fields.size() >= 3)
          << "bad rank line: " << line;
      GoldenRanking ranking;
      ranking.score = std::strtod(fields[2].c_str(), nullptr);
      ranking.terms.assign(fields.begin() + 3, fields.end());
      entries.back().rankings.push_back(std::move(ranking));
    } else {
      KQR_CHECK(false) << "bad golden line: " << line;
    }
  }
  return entries;
}

std::string Describe(const GoldenRanking& r) {
  std::ostringstream out;
  out << r.score << " [";
  for (size_t i = 0; i < r.terms.size(); ++i) {
    out << (i > 0 ? ", " : "") << r.terms[i];
  }
  out << "]";
  return out.str();
}

TEST(GoldenReformulation, MatchesCheckedInFixture) {
  const ServingModel& model = GoldenModel();
  const std::vector<GoldenEntry> actual = ComputeEntries(model);

  if (std::getenv("KQR_REGENERATE_GOLDEN") != nullptr) {
    WriteGolden(GoldenPath(), actual);
    GTEST_SKIP() << "regenerated " << GoldenPath() << " ("
                 << actual.size() << " queries) — review the diff";
  }

  const std::vector<GoldenEntry> golden = ReadGolden(GoldenPath());
  ASSERT_EQ(golden.size(), actual.size())
      << "query-set size changed; regenerate the fixture if intentional";
  for (size_t qi = 0; qi < golden.size(); ++qi) {
    const GoldenEntry& want = golden[qi];
    const GoldenEntry& got = actual[qi];
    // The sampler must reproduce the recorded query verbatim — if this
    // fails, sampling (not reformulation) drifted.
    ASSERT_EQ(want.query, got.query) << "sampled query " << qi << " drifted";
    ASSERT_EQ(want.rankings.size(), got.rankings.size())
        << "suggestion count changed for query " << qi;
    for (size_t i = 0; i < want.rankings.size(); ++i) {
      EXPECT_EQ(want.rankings[i].terms, got.rankings[i].terms)
          << "query " << qi << " rank " << i << "\n  golden: "
          << Describe(want.rankings[i]) << "\n  actual: "
          << Describe(got.rankings[i]);
      // Tolerant score comparison: the fixture must survive compiler /
      // libm variation; ordering changes are caught by the term check.
      EXPECT_NEAR(want.rankings[i].score, got.rankings[i].score,
                  1e-9 * std::max(1.0, std::abs(want.rankings[i].score)))
          << "query " << qi << " rank " << i;
    }
  }
}

TEST(GoldenReformulation, BitStableAcrossConsecutiveRuns) {
  const ServingModel& model = GoldenModel();
  const std::vector<std::vector<TermId>> queries = GoldenQueries(model);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const auto first_result = model.ReformulateTerms(queries[qi], kTopK);
    const auto second_result = model.ReformulateTerms(queries[qi], kTopK);
    ASSERT_TRUE(first_result.ok() && second_result.ok()) << "query " << qi;
    const auto& first = *first_result;
    const auto& second = *second_result;
    ASSERT_EQ(first.size(), second.size()) << "query " << qi;
    for (size_t i = 0; i < first.size(); ++i) {
      EXPECT_EQ(first[i].terms, second[i].terms)
          << "query " << qi << " rank " << i;
      EXPECT_EQ(ScoreBits(first[i].score), ScoreBits(second[i].score))
          << "query " << qi << " rank " << i;
    }
  }
}

TEST(GoldenReformulation, BitStableAcrossBuildThreadCounts) {
  // The acceptance bar: offline indexes built with 8 worker threads must
  // yield rankings bit-identical to a single-threaded build.
  const ServingModel& one = GoldenModel();
  const std::shared_ptr<const ServingModel> eight_model = BuildModel(8);
  const ServingModel& eight = *eight_model;
  const std::vector<std::vector<TermId>> queries = GoldenQueries(one);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const auto a_result = one.ReformulateTerms(queries[qi], kTopK);
    const auto b_result = eight.ReformulateTerms(queries[qi], kTopK);
    ASSERT_TRUE(a_result.ok() && b_result.ok()) << "query " << qi;
    const auto& a = *a_result;
    const auto& b = *b_result;
    ASSERT_EQ(a.size(), b.size()) << "query " << qi;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].terms, b[i].terms) << "query " << qi << " rank " << i;
      EXPECT_EQ(ScoreBits(a[i].score), ScoreBits(b[i].score))
          << "query " << qi << " rank " << i;
    }
  }
}

TEST(GoldenReformulation, MappedModelReproducesGoldenRankings) {
  // The v3 model file is a serving format, not a cache: a model saved and
  // reopened through the mmap path must reproduce the golden rankings
  // bit for bit, term for term.
  const ServingModel& source = GoldenModel();
  const std::string path = ::testing::TempDir() + "/golden_model.kqrm";
  const Status saved = EngineBuilder::SaveModel(source, path);
  ASSERT_TRUE(saved.ok()) << saved.ToString();

  auto corpus = GenerateDblp(GoldenCorpus());
  ASSERT_TRUE(corpus.ok());
  EngineOptions options;
  options.precompute_offline = true;
  auto mapped_result =
      ServingModel::OpenMapped(std::move(corpus->db), path, options);
  ASSERT_TRUE(mapped_result.ok()) << mapped_result.status().ToString();
  const ServingModel& mapped = **mapped_result;
  std::remove(path.c_str());

  ASSERT_TRUE(mapped.fully_prepared());
  const std::vector<std::vector<TermId>> queries = GoldenQueries(source);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const auto want_result = source.ReformulateTerms(queries[qi], kTopK);
    const auto got_result = mapped.ReformulateTerms(queries[qi], kTopK);
    ASSERT_TRUE(want_result.ok() && got_result.ok()) << "query " << qi;
    const auto& want = *want_result;
    const auto& got = *got_result;
    ASSERT_EQ(want.size(), got.size()) << "query " << qi;
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(want[i].terms, got[i].terms)
          << "query " << qi << " rank " << i;
      EXPECT_EQ(ScoreBits(want[i].score), ScoreBits(got[i].score))
          << "query " << qi << " rank " << i;
    }
  }
}

TEST(GoldenReformulation, TracingDoesNotPerturbResults) {
  // The observability hooks must be write-only: serving with tracing
  // enabled returns the same bits as serving without.
  const ServingModel& model = GoldenModel();
  const std::vector<std::vector<TermId>> queries = GoldenQueries(model);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    RequestContext traced;
    traced.trace.Enable();
    const auto plain_result = model.ReformulateTerms(queries[qi], kTopK);
    const auto traced_result =
        model.ReformulateTerms(queries[qi], kTopK, &traced);
    ASSERT_TRUE(plain_result.ok() && traced_result.ok()) << "query " << qi;
    const auto& plain = *plain_result;
    const auto& with_trace = *traced_result;
    ASSERT_EQ(plain.size(), with_trace.size()) << "query " << qi;
    for (size_t i = 0; i < plain.size(); ++i) {
      EXPECT_EQ(plain[i].terms, with_trace[i].terms)
          << "query " << qi << " rank " << i;
      EXPECT_EQ(ScoreBits(plain[i].score), ScoreBits(with_trace[i].score))
          << "query " << qi << " rank " << i;
    }
    EXPECT_GT(traced.trace.spans().size(), 0u) << "trace recorded nothing";
  }
}

}  // namespace
}  // namespace kqr
