// ParallelFor / ResolveThreadCount: the worker-pool primitive under the
// offline batch builders.

#include "common/parallel_for.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

namespace kqr {
namespace {

TEST(ParallelFor, EveryItemVisitedExactlyOnce) {
  const size_t n = 1000;
  std::vector<std::atomic<int>> visits(n);
  for (auto& v : visits) v.store(0);
  ParallelFor(n, 4, [&](size_t, size_t item) {
    visits[item].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "item " << i;
  }
}

TEST(ParallelFor, WorkerIndexStaysInRange) {
  const size_t workers = 4;
  std::atomic<size_t> max_worker{0};
  ParallelFor(256, workers, [&](size_t worker, size_t) {
    size_t seen = max_worker.load(std::memory_order_relaxed);
    while (worker > seen &&
           !max_worker.compare_exchange_weak(seen, worker)) {
    }
  });
  EXPECT_LT(max_worker.load(), workers);
}

TEST(ParallelFor, ZeroItemsIsANoop) {
  bool called = false;
  ParallelFor(0, 8, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, MoreWorkersThanItems) {
  std::vector<std::atomic<int>> visits(3);
  for (auto& v : visits) v.store(0);
  ParallelFor(3, 16, [&](size_t, size_t item) {
    visits[item].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ParallelFor, SingleWorkerRunsInlineInOrder) {
  std::thread::id main_id = std::this_thread::get_id();
  std::vector<size_t> order;
  ParallelFor(5, 1, [&](size_t worker, size_t item) {
    EXPECT_EQ(worker, 0u);
    EXPECT_EQ(std::this_thread::get_id(), main_id);
    order.push_back(item);
  });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ResolveThreadCount, ExplicitRequestWins) {
  setenv("KQR_THREADS", "7", 1);
  EXPECT_EQ(ResolveThreadCount(3), 3u);
  unsetenv("KQR_THREADS");
}

TEST(ResolveThreadCount, EnvVarSuppliesDefault) {
  setenv("KQR_THREADS", "5", 1);
  EXPECT_EQ(ResolveThreadCount(0), 5u);
  unsetenv("KQR_THREADS");
}

TEST(ResolveThreadCount, BadEnvValueFallsBackToHardware) {
  setenv("KQR_THREADS", "not-a-number", 1);
  EXPECT_GE(ResolveThreadCount(0), 1u);
  setenv("KQR_THREADS", "-2", 1);
  EXPECT_GE(ResolveThreadCount(0), 1u);
  unsetenv("KQR_THREADS");
  EXPECT_GE(ResolveThreadCount(0), 1u);
}

}  // namespace
}  // namespace kqr
