#include "storage/schema.h"

#include <gtest/gtest.h>

namespace kqr {
namespace {

Schema MakeValid() {
  auto s = Schema::Make(
      "papers",
      {Column("paper_id", ValueType::kInt64),
       Column("title", ValueType::kString, TextRole::kSegmented),
       Column("venue_id", ValueType::kInt64)},
      "paper_id", {ForeignKey{"venue_id", "venues"}});
  EXPECT_TRUE(s.ok()) << s.status().ToString();
  return std::move(s).ValueOrDie();
}

TEST(Schema, MakeValidSchema) {
  Schema s = MakeValid();
  EXPECT_EQ(s.table_name(), "papers");
  EXPECT_EQ(s.num_columns(), 3u);
  EXPECT_EQ(s.primary_key(), "paper_id");
  EXPECT_EQ(s.primary_key_index(), 0u);
  ASSERT_EQ(s.foreign_keys().size(), 1u);
  EXPECT_EQ(s.foreign_keys()[0].parent_table, "venues");
}

TEST(Schema, FindColumn) {
  Schema s = MakeValid();
  EXPECT_EQ(*s.FindColumn("title"), 1u);
  EXPECT_FALSE(s.FindColumn("nope").has_value());
}

TEST(Schema, TextColumns) {
  Schema s = MakeValid();
  auto text = s.TextColumns();
  ASSERT_EQ(text.size(), 1u);
  EXPECT_EQ(text[0], 1u);
}

TEST(Schema, RejectsEmptyTableName) {
  auto s = Schema::Make("", {Column("id", ValueType::kInt64)}, "id");
  EXPECT_TRUE(s.status().IsInvalidArgument());
}

TEST(Schema, RejectsNoColumns) {
  auto s = Schema::Make("t", {}, "id");
  EXPECT_TRUE(s.status().IsInvalidArgument());
}

TEST(Schema, RejectsDuplicateColumn) {
  auto s = Schema::Make("t",
                        {Column("id", ValueType::kInt64),
                         Column("id", ValueType::kString)},
                        "id");
  EXPECT_TRUE(s.status().IsInvalidArgument());
}

TEST(Schema, RejectsMissingPrimaryKey) {
  auto s = Schema::Make("t", {Column("a", ValueType::kInt64)}, "id");
  EXPECT_TRUE(s.status().IsInvalidArgument());
}

TEST(Schema, RejectsNonIntPrimaryKey) {
  auto s = Schema::Make("t", {Column("id", ValueType::kString)}, "id");
  EXPECT_TRUE(s.status().IsInvalidArgument());
}

TEST(Schema, RejectsTextRoleOnNonString) {
  auto s = Schema::Make(
      "t",
      {Column("id", ValueType::kInt64),
       Column("n", ValueType::kInt64, TextRole::kSegmented)},
      "id");
  EXPECT_TRUE(s.status().IsInvalidArgument());
}

TEST(Schema, RejectsUnknownFkColumn) {
  auto s = Schema::Make("t", {Column("id", ValueType::kInt64)}, "id",
                        {ForeignKey{"ghost", "other"}});
  EXPECT_TRUE(s.status().IsInvalidArgument());
}

TEST(Schema, RejectsNonIntFkColumn) {
  auto s = Schema::Make("t",
                        {Column("id", ValueType::kInt64),
                         Column("ref", ValueType::kString)},
                        "id", {ForeignKey{"ref", "other"}});
  EXPECT_TRUE(s.status().IsInvalidArgument());
}

TEST(Schema, ValidateRowAcceptsMatching) {
  Schema s = MakeValid();
  EXPECT_TRUE(
      s.ValidateRow({Value(int64_t{1}), Value("t"), Value(int64_t{2})})
          .ok());
}

TEST(Schema, ValidateRowAcceptsNullNonPk) {
  Schema s = MakeValid();
  EXPECT_TRUE(
      s.ValidateRow({Value(int64_t{1}), Value::Null(), Value::Null()})
          .ok());
}

TEST(Schema, ValidateRowRejectsNullPk) {
  Schema s = MakeValid();
  Status st =
      s.ValidateRow({Value::Null(), Value("t"), Value(int64_t{2})});
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
}

TEST(Schema, ValidateRowRejectsArityMismatch) {
  Schema s = MakeValid();
  EXPECT_TRUE(
      s.ValidateRow({Value(int64_t{1}), Value("t")}).IsInvalidArgument());
}

TEST(Schema, ValidateRowRejectsTypeMismatch) {
  Schema s = MakeValid();
  EXPECT_TRUE(s.ValidateRow({Value(int64_t{1}), Value(int64_t{9}),
                             Value(int64_t{2})})
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace kqr
