// End-to-end smoke: generate a small corpus, build the engine, reformulate
// a query. Exercises the whole pipeline in one place.

#include <gtest/gtest.h>

#include "core/engine_builder.h"
#include "datagen/dblp_gen.h"

namespace kqr {
namespace {

TEST(Smoke, EndToEndReformulation) {
  DblpOptions dblp;
  dblp.num_authors = 120;
  dblp.num_papers = 400;
  dblp.num_venues = 24;
  auto corpus = GenerateDblp(dblp);
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();

  auto engine = EngineBuilder().Build(std::move(corpus->db));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  auto result = (*engine)->Reformulate("query index", 5);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->size(), 0u);
  for (const auto& q : *result) {
    EXPECT_EQ(q.terms.size(), 2u);
    EXPECT_GT(q.score, 0.0);
  }
}

}  // namespace
}  // namespace kqr
