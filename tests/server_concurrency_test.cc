// Concurrency contract of the kqr::Server front-end: many submitter
// threads racing against the worker pool (and against Drain) must get
// rankings bit-identical to a serial run, and every submission must
// resolve to exactly one definite outcome. Run under TSan in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "core/engine_builder.h"
#include "datagen/dblp_gen.h"
#include "eval/experiment.h"
#include "server/server.h"
#include "test_fixtures.h"

namespace kqr {
namespace {

// Small corpus so the test stays quick under ThreadSanitizer.
DblpOptions SmallCorpus() {
  DblpOptions options;
  options.num_authors = 80;
  options.num_papers = 260;
  options.num_venues = 8;
  options.seed = 7;
  return options;
}

struct Workload {
  ExperimentContext ctx;
  std::vector<std::vector<TermId>> queries;
};

Workload MakeWorkload(EngineOptions engine = {}) {
  Workload w;
  auto ctx = MakeDblpContext(SmallCorpus(), engine);
  KQR_CHECK(ctx.ok()) << ctx.status().ToString();
  w.ctx = std::move(*ctx);
  QuerySampler sampler(*w.ctx.model, /*seed=*/99);
  for (size_t len : {2, 3}) {
    for (auto& q : sampler.SampleQueries(8, len)) {
      w.queries.push_back(std::move(q));
    }
  }
  return w;
}

bool SameRanking(const std::vector<ReformulatedQuery>& a,
                 const std::vector<ReformulatedQuery>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].terms != b[i].terms) return false;
    if (std::memcmp(&a[i].score, &b[i].score, sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

// N submitter threads × all queries through one batching server (lazy
// model, so workers also race through batched term preparation) must
// reproduce a serial run on a fresh model bit for bit.
TEST(ServerConcurrency, ConcurrentSubmittersMatchSerialBitExact) {
  constexpr size_t kSubmitters = 6;
  constexpr size_t kTopK = 5;

  Workload serial = MakeWorkload();
  std::vector<std::vector<ReformulatedQuery>> reference;
  for (const auto& q : serial.queries) {
    auto r = serial.ctx.model->ReformulateTerms(q, kTopK);
    KQR_CHECK(r.ok()) << r.status().ToString();
    reference.push_back(std::move(*r));
  }

  Workload threaded = MakeWorkload();
  ASSERT_EQ(threaded.queries.size(), serial.queries.size());
  ServerOptions opts;
  opts.num_workers = 4;
  opts.max_batch = 4;
  opts.queue_capacity = kSubmitters * threaded.queries.size() + 8;
  auto server = Server::Create(threaded.ctx.model, opts);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  std::atomic<size_t> divergent{0}, failed{0};
  std::vector<std::thread> submitters;
  for (size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&]() {
      std::vector<std::future<ServeResult>> futures;
      for (const auto& q : threaded.queries) {
        ServerRequest request;
        request.terms = q;
        request.k = kTopK;
        futures.push_back((*server)->Submit(std::move(request)));
      }
      for (size_t i = 0; i < futures.size(); ++i) {
        auto result = futures[i].get();
        if (!result.ok()) {
          failed.fetch_add(1, std::memory_order_relaxed);
        } else if (!SameRanking(*result, reference[i])) {
          divergent.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(failed.load(), 0u);
  EXPECT_EQ(divergent.load(), 0u);
}

// Submissions racing a concurrent Drain: every request resolves exactly
// once — served ok, or shed with kUnavailable. No hangs, no lost futures.
TEST(ServerConcurrency, SubmitRacingDrainResolvesEveryRequest) {
  auto model = [] {
    auto built =
        EngineBuilder().Build(testing_fixtures::MakeMicroDblp());
    KQR_CHECK(built.ok());
    return std::move(built).ValueOrDie();
  }();
  auto terms = model->ResolveQuery("uncertain query");
  ASSERT_TRUE(terms.ok());

  ServerOptions opts;
  opts.num_workers = 2;
  opts.queue_capacity = 64;
  auto server = Server::Create(model, opts);
  ASSERT_TRUE(server.ok());

  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 50;
  std::atomic<size_t> resolved{0}, bad_status{0};
  std::vector<std::thread> submitters;
  for (size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&]() {
      for (size_t i = 0; i < kPerThread; ++i) {
        ServerRequest request;
        request.terms = *terms;
        request.k = 5;
        auto result = (*server)->Submit(std::move(request)).get();
        resolved.fetch_add(1, std::memory_order_relaxed);
        if (!result.ok() && !result.status().IsUnavailable()) {
          bad_status.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Drain while submitters are still pushing.
  (*server)->Drain();
  for (auto& t : submitters) t.join();
  EXPECT_EQ(resolved.load(), kThreads * kPerThread);
  EXPECT_EQ(bad_status.load(), 0u);
  EXPECT_EQ((*server)->queue_depth(), 0u);
}

// Overload from many threads against a tiny queue: accounting stays
// exact (every submission either serves or sheds; counters agree).
TEST(ServerConcurrency, OverloadAccountingStaysExact) {
  auto model = [] {
    auto built =
        EngineBuilder().Build(testing_fixtures::MakeMicroDblp());
    KQR_CHECK(built.ok());
    return std::move(built).ValueOrDie();
  }();
  auto terms = model->ResolveQuery("uncertain query");
  ASSERT_TRUE(terms.ok());

  ServerOptions opts;
  opts.num_workers = 1;
  opts.queue_capacity = 2;
  opts.max_batch = 2;
  auto server = Server::Create(model, opts);
  ASSERT_TRUE(server.ok());

  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 100;
  std::atomic<size_t> ok{0}, shed{0}, other{0};
  std::vector<std::thread> submitters;
  for (size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&]() {
      for (size_t i = 0; i < kPerThread; ++i) {
        ServerRequest request;
        request.terms = *terms;
        request.k = 5;
        auto result = (*server)->Submit(std::move(request)).get();
        if (result.ok()) {
          ok.fetch_add(1, std::memory_order_relaxed);
        } else if (result.status().IsUnavailable()) {
          shed.fetch_add(1, std::memory_order_relaxed);
        } else {
          other.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : submitters) t.join();
  (*server)->Drain();

  EXPECT_EQ(ok.load() + shed.load(), kThreads * kPerThread);
  EXPECT_EQ(other.load(), 0u);
  EXPECT_GT(ok.load(), 0u);
  const MetricsSnapshot snap = model->MetricsNow();
  EXPECT_EQ(snap.CounterValue("kqr_server_submitted_total"),
            kThreads * kPerThread);
  EXPECT_EQ(snap.CounterValue("kqr_server_shed_total"), shed.load());
  EXPECT_EQ(snap.CounterValue("kqr_server_completed_total"), ok.load());
}

}  // namespace
}  // namespace kqr
