#include "common/latency.h"

#include <gtest/gtest.h>

namespace kqr {
namespace {

TEST(Latency, EmptyRecorderIsZero) {
  LatencyRecorder r;
  EXPECT_EQ(r.count(), 0u);
  EXPECT_EQ(r.TotalSeconds(), 0.0);
  EXPECT_EQ(r.MeanSeconds(), 0.0);
  EXPECT_EQ(r.Percentile(50), 0.0);
}

TEST(Latency, MeanAndTotal) {
  LatencyRecorder r;
  r.Add(1.0);
  r.Add(2.0);
  r.Add(3.0);
  EXPECT_EQ(r.count(), 3u);
  EXPECT_DOUBLE_EQ(r.TotalSeconds(), 6.0);
  EXPECT_DOUBLE_EQ(r.MeanSeconds(), 2.0);
}

TEST(Latency, NearestRankPercentiles) {
  LatencyRecorder r;
  // 10 samples, inserted out of order: 1..10.
  for (double s : {7.0, 1.0, 10.0, 3.0, 5.0, 2.0, 9.0, 4.0, 8.0, 6.0}) {
    r.Add(s);
  }
  // Nearest-rank: ceil(p/100 * 10) → that order statistic.
  EXPECT_DOUBLE_EQ(r.Percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(r.Percentile(90), 9.0);
  EXPECT_DOUBLE_EQ(r.Percentile(95), 10.0);
  EXPECT_DOUBLE_EQ(r.Percentile(99), 10.0);
  EXPECT_DOUBLE_EQ(r.Percentile(100), 10.0);
  EXPECT_DOUBLE_EQ(r.Percentile(0), 1.0);
}

TEST(Latency, SingleSample) {
  LatencyRecorder r;
  r.Add(0.25);
  EXPECT_DOUBLE_EQ(r.Percentile(1), 0.25);
  EXPECT_DOUBLE_EQ(r.Percentile(50), 0.25);
  EXPECT_DOUBLE_EQ(r.Percentile(99), 0.25);
}

TEST(Latency, MergeCombinesSamples) {
  LatencyRecorder a;
  LatencyRecorder b;
  a.Add(1.0);
  a.Add(2.0);
  b.Add(3.0);
  b.Add(4.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.TotalSeconds(), 10.0);
  EXPECT_DOUBLE_EQ(a.Percentile(100), 4.0);
  // Merge leaves the source untouched.
  EXPECT_EQ(b.count(), 2u);
}

TEST(Latency, PercentileDoesNotMutateRecorder) {
  LatencyRecorder r;
  for (double s : {3.0, 1.0, 2.0}) r.Add(s);
  (void)r.Percentile(50);
  EXPECT_DOUBLE_EQ(r.TotalSeconds(), 6.0);
  EXPECT_EQ(r.count(), 3u);
}

}  // namespace
}  // namespace kqr
