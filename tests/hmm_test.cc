#include "core/hmm.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "graph/tat_builder.h"
#include "test_fixtures.h"
#include "walk/similarity_index.h"

namespace kqr {
namespace {

using testing_fixtures::MicroCorpus;

class HmmTest : public ::testing::Test {
 protected:
  HmmTest() : corpus_(MicroCorpus::Make()) {
    auto graph =
        BuildTatGraph(corpus_.db, corpus_.vocab, corpus_.index,
                      TatBuilderOptions{.max_doc_frequency_fraction = 1.0});
    KQR_CHECK(graph.ok());
    graph_ = std::make_unique<TatGraph>(std::move(*graph));
    stats_ = std::make_unique<GraphStats>(*graph_);

    std::vector<TermId> all;
    for (TermId t = 0; t < corpus_.vocab.size(); ++t) all.push_back(t);
    similarity_ = SimilarityIndex::BuildFor(*graph_, *stats_, all);
    closeness_ = ClosenessIndex::BuildFor(*graph_, all);
  }

  std::vector<std::vector<CandidateState>> CandidatesFor(
      std::vector<TermId> query) {
    CandidateBuilder builder(similarity_);
    return builder.Build(query);
  }

  MicroCorpus corpus_;
  std::unique_ptr<TatGraph> graph_;
  std::unique_ptr<GraphStats> stats_;
  SimilarityIndex similarity_;
  ClosenessIndex closeness_;
};

TEST_F(HmmTest, DistributionsAreNormalized) {
  auto candidates = CandidatesFor(
      {corpus_.Title("uncertain"), corpus_.Title("query")});
  HmmBuilder builder(closeness_, *stats_, *graph_);
  HmmModel model = builder.Build(candidates);

  ASSERT_EQ(model.num_positions(), 2u);
  double pi_sum = std::accumulate(model.pi.begin(), model.pi.end(), 0.0);
  EXPECT_NEAR(pi_sum, 1.0, 1e-9);
  for (size_t c = 0; c < 2; ++c) {
    double e_sum = std::accumulate(model.emission[c].begin(),
                                   model.emission[c].end(), 0.0);
    EXPECT_NEAR(e_sum, 1.0, 1e-9);
  }
  for (const auto& row : model.trans[0]) {
    double sum = std::accumulate(row.begin(), row.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST_F(HmmTest, PiFollowsFrequency) {
  // π (Eq. 7) is proportional to term frequency: the frequent "uncertain"
  // outweighs the rare "probabilistic" among first-position candidates.
  auto candidates = CandidatesFor({corpus_.Title("uncertain")});
  HmmBuilder builder(closeness_, *stats_, *graph_);
  HmmModel model = builder.Build(candidates);
  // Locate the original (uncertain, freq 2) and probabilistic (freq 1).
  double pi_uncertain = -1, pi_prob = -1;
  for (size_t i = 0; i < model.states[0].size(); ++i) {
    if (model.states[0][i].term == corpus_.Title("uncertain")) {
      pi_uncertain = model.pi[i];
    }
    if (model.states[0][i].term == corpus_.Title("probabilistic")) {
      pi_prob = model.pi[i];
    }
  }
  ASSERT_GE(pi_uncertain, 0.0);
  if (pi_prob >= 0.0) {
    EXPECT_GT(pi_uncertain, pi_prob);
  }
}

TEST_F(HmmTest, EmissionOrderFollowsSimilarity) {
  auto candidates = CandidatesFor({corpus_.Title("uncertain")});
  HmmBuilder builder(closeness_, *stats_, *graph_);
  HmmModel model = builder.Build(candidates);
  // States come ordered by similarity (original first); smoothing must
  // preserve that order within the emission vector.
  for (size_t i = 1; i < model.emission[0].size(); ++i) {
    EXPECT_GE(model.emission[0][i - 1], model.emission[0][i] - 1e-12);
  }
}

TEST_F(HmmTest, SmoothingLiftsZeroTransitions) {
  auto candidates = CandidatesFor(
      {corpus_.Title("uncertain"), corpus_.Title("pattern")});
  HmmOptions options;
  options.smoothing.lambda = 0.8;
  HmmBuilder builder(closeness_, *stats_, *graph_, options);
  HmmModel model = builder.Build(candidates);
  // Every transition is strictly positive post-smoothing+normalization
  // (rows that had any mass get the mean share; empty rows go uniform).
  for (const auto& row : model.trans[0]) {
    for (double v : row) EXPECT_GT(v, 0.0);
  }
}

TEST_F(HmmTest, PathScoreMultipliesComponents) {
  auto candidates = CandidatesFor(
      {corpus_.Title("uncertain"), corpus_.Title("query")});
  HmmBuilder builder(closeness_, *stats_, *graph_);
  HmmModel model = builder.Build(candidates);
  std::vector<int> path = {0, 0};
  double expected = model.pi[0] * model.emission[0][0] *
                    model.trans[0][0][0] * model.emission[1][0];
  EXPECT_NEAR(model.PathScore(path), expected, 1e-15);
}

TEST_F(HmmTest, VoidStatesGetTransitionMass) {
  CandidateOptions copt;
  copt.include_void = true;
  CandidateBuilder cbuilder(similarity_, copt);
  auto candidates = cbuilder.Build(
      {corpus_.Title("uncertain"), corpus_.Title("query")});
  HmmBuilder builder(closeness_, *stats_, *graph_);
  HmmModel model = builder.Build(candidates);
  // The void state is the last at each position; its row must be a valid
  // distribution.
  const auto& void_row = model.trans[0].back();
  double sum = std::accumulate(void_row.begin(), void_row.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_F(HmmTest, EmptyCandidatesGiveEmptyModel) {
  HmmBuilder builder(closeness_, *stats_, *graph_);
  HmmModel model = builder.Build({});
  EXPECT_EQ(model.num_positions(), 0u);
  // The builder still leaves the bounds in a consistent (empty) state.
  EXPECT_TRUE(model.bounds_ready());
}

TEST_F(HmmTest, BuilderComputesPruningBounds) {
  auto candidates = CandidatesFor(
      {corpus_.Title("uncertain"), corpus_.Title("query")});
  HmmBuilder builder(closeness_, *stats_, *graph_);
  HmmModel model = builder.Build(candidates);
  ASSERT_TRUE(model.bounds_ready());
  ASSERT_EQ(model.emission_max.size(), 2u);
  ASSERT_EQ(model.trans_max.size(), 1u);
  ASSERT_EQ(model.suffix_bound.size(), 2u);

  // emission_max is the exact (bit-identical) row maximum.
  for (size_t c = 0; c < 2; ++c) {
    double row_max = 0.0;
    for (double v : model.emission[c]) row_max = std::max(row_max, v);
    EXPECT_EQ(model.emission_max[c], row_max);
  }
  // trans_max dominates every entry of its slice and equals one of them.
  double slice_max = 0.0;
  for (const auto& row : model.trans[0]) {
    for (double v : row) slice_max = std::max(slice_max, v);
  }
  EXPECT_EQ(model.trans_max[0], slice_max);
  // The suffix recurrence anchors at 1 and composes exactly.
  EXPECT_EQ(model.suffix_bound[1], 1.0);
  EXPECT_EQ(model.suffix_bound[0],
            model.trans_max[0] * model.emission_max[1] *
                model.suffix_bound[1]);
}

TEST_F(HmmTest, ComputeBoundsOnHandAssembledModel) {
  // Hand-built models start without bounds; ComputeBounds upgrades them.
  HmmModel model;
  model.states.assign(2, std::vector<CandidateState>(2));
  model.pi = {0.6, 0.4};
  model.emission = {{0.3, 0.7}, {0.9, 0.1}};
  model.trans = {{{0.2, 0.8}, {0.5, 0.5}}};
  EXPECT_FALSE(model.bounds_ready());
  model.ComputeBounds();
  ASSERT_TRUE(model.bounds_ready());
  EXPECT_EQ(model.emission_max[0], 0.7);
  EXPECT_EQ(model.emission_max[1], 0.9);
  EXPECT_EQ(model.trans_max[0], 0.8);
  EXPECT_EQ(model.suffix_bound[1], 1.0);
  EXPECT_EQ(model.suffix_bound[0], 0.8 * 0.9);

  // Single-position model: no transitions, suffix anchors at 1.
  HmmModel single;
  single.states.assign(1, std::vector<CandidateState>(2));
  single.pi = {0.5, 0.5};
  single.emission = {{0.25, 0.75}};
  single.ComputeBounds();
  ASSERT_TRUE(single.bounds_ready());
  EXPECT_TRUE(single.trans_max.empty());
  EXPECT_EQ(single.suffix_bound[0], 1.0);
}

}  // namespace
}  // namespace kqr
