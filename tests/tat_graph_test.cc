#include "graph/tat_graph.h"

#include <gtest/gtest.h>

#include "graph/graph_stats.h"
#include "graph/tat_builder.h"
#include "test_fixtures.h"

namespace kqr {
namespace {

using testing_fixtures::MicroCorpus;

class TatGraphTest : public ::testing::Test {
 protected:
  TatGraphTest() : corpus_(MicroCorpus::Make()) {
    auto graph =
        BuildTatGraph(corpus_.db, corpus_.vocab, corpus_.index,
                      TatBuilderOptions{.max_doc_frequency_fraction = 1.0});
    KQR_CHECK(graph.ok());
    graph_ = std::make_unique<TatGraph>(std::move(*graph));
  }

  MicroCorpus corpus_;
  std::unique_ptr<TatGraph> graph_;
};

TEST_F(TatGraphTest, NodeCounts) {
  // Tuple nodes: 2 venues + 3 authors + 4 papers + 5 writes = 14.
  EXPECT_EQ(graph_->space().num_tuple_nodes(), 14u);
  EXPECT_EQ(graph_->space().num_term_nodes(), corpus_.vocab.size());
  EXPECT_EQ(graph_->num_nodes(),
            14u + corpus_.vocab.size());
}

TEST_F(TatGraphTest, NodeSpaceRoundTrip) {
  const NodeSpace& space = graph_->space();
  for (uint16_t t = 0; t < 4; ++t) {
    TupleRef ref{t, 0};
    EXPECT_EQ(space.ToTuple(space.FromTuple(ref)), ref);
  }
  TupleRef last{3, 4};  // writes row 4
  EXPECT_EQ(space.ToTuple(space.FromTuple(last)), last);
  for (TermId term = 0; term < corpus_.vocab.size(); ++term) {
    EXPECT_EQ(space.ToTerm(space.FromTerm(term)), term);
    EXPECT_EQ(space.KindOf(space.FromTerm(term)), NodeKind::kTerm);
  }
  EXPECT_EQ(space.KindOf(space.FromTuple({0, 0})), NodeKind::kTuple);
}

TEST_F(TatGraphTest, FkEdgesPresent) {
  // Paper p0 (papers row 0) references venue v0 (venues row 0).
  NodeId paper = graph_->NodeOfTuple({2, 0});
  NodeId venue = graph_->NodeOfTuple({0, 0});
  bool found = false;
  for (const Arc& arc : graph_->Neighbors(paper)) {
    if (arc.target == venue) found = true;
  }
  EXPECT_TRUE(found) << "FK edge paper->venue missing";
}

TEST_F(TatGraphTest, TermEdgesPresent) {
  TermId uncertain = corpus_.Title("uncertain");
  NodeId term_node = graph_->NodeOfTerm(uncertain);
  // Connected to papers p0 and p3.
  EXPECT_EQ(graph_->Degree(term_node), 2u);
  for (const Arc& arc : graph_->Neighbors(term_node)) {
    EXPECT_EQ(graph_->KindOf(arc.target), NodeKind::kTuple);
    TupleRef ref = graph_->TupleOfNode(arc.target);
    EXPECT_EQ(ref.table, 2);
    EXPECT_TRUE(ref.row == 0 || ref.row == 3);
  }
}

TEST_F(TatGraphTest, ClassesSeparateTablesAndFields) {
  NodeId venue_tuple = graph_->NodeOfTuple({0, 0});
  NodeId author_tuple = graph_->NodeOfTuple({1, 0});
  EXPECT_NE(graph_->ClassOf(venue_tuple), graph_->ClassOf(author_tuple));

  NodeId title_term = graph_->NodeOfTerm(corpus_.Title("uncertain"));
  NodeId author_term =
      graph_->NodeOfTerm(corpus_.Author("alice smith"));
  EXPECT_NE(graph_->ClassOf(title_term), graph_->ClassOf(author_term));
  // Same-field terms share a class.
  NodeId other_title = graph_->NodeOfTerm(corpus_.Title("mining"));
  EXPECT_EQ(graph_->ClassOf(title_term), graph_->ClassOf(other_title));
}

TEST_F(TatGraphTest, DescribeNode) {
  EXPECT_EQ(graph_->DescribeNode(graph_->NodeOfTuple({2, 1})), "papers#1");
  NodeId term = graph_->NodeOfTerm(corpus_.Title("mining"));
  EXPECT_EQ(graph_->DescribeNode(term), "mine@papers.title");
}

TEST(TatBuilder, GenericTermCutRemovesHighDfTerms) {
  MicroCorpus corpus = MicroCorpus::Make();
  // With a very low cap every term exceeding 1/9 of the corpus (df >= 2)
  // is cut from the graph.
  TatBuilderOptions options;
  options.max_doc_frequency_fraction = 0.12;  // df cap = 1
  auto graph = BuildTatGraph(corpus.db, corpus.vocab, corpus.index, options);
  ASSERT_TRUE(graph.ok());
  // "uncertain" (df 2) is cut: its node is isolated.
  EXPECT_EQ(graph->Degree(graph->NodeOfTerm(corpus.Title("uncertain"))),
            0u);
  // "probabilistic" (df 1) stays.
  EXPECT_EQ(
      graph->Degree(graph->NodeOfTerm(corpus.Title("probabilistic"))),
      1u);
}

TEST(TatBuilder, RejectsNonPositiveDfCap) {
  MicroCorpus corpus = MicroCorpus::Make();
  TatBuilderOptions options;
  options.max_doc_frequency_fraction = 0.0;
  auto graph = BuildTatGraph(corpus.db, corpus.vocab, corpus.index, options);
  EXPECT_TRUE(graph.status().IsInvalidArgument());
}

TEST(GraphStats, FreqAndIdfShape) {
  MicroCorpus corpus = MicroCorpus::Make();
  auto graph =
      BuildTatGraph(corpus.db, corpus.vocab, corpus.index,
                    TatBuilderOptions{.max_doc_frequency_fraction = 1.0});
  ASSERT_TRUE(graph.ok());
  GraphStats stats(*graph);
  ASSERT_EQ(stats.num_nodes(), graph->num_nodes());

  NodeId common = graph->NodeOfTerm(corpus.Title("uncertain"));   // df 2
  NodeId rare = graph->NodeOfTerm(corpus.Title("probabilistic"));  // df 1
  EXPECT_GT(stats.Freq(common), stats.Freq(rare));
  EXPECT_LT(stats.Idf(common), stats.Idf(rare));
  EXPECT_GT(stats.Idf(common), 0.0);
  EXPECT_EQ(stats.ClassOf(common), graph->ClassOf(common));
}

}  // namespace
}  // namespace kqr
