#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace kqr {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBoundedInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(10), 10u);
    EXPECT_EQ(rng.NextBounded(1), 0u);
  }
}

TEST(Rng, NextBoundedCoversRange) {
  Rng rng(11);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 1000; ++i) ++seen[rng.NextBounded(5)];
  for (int count : seen) EXPECT_GT(count, 100);  // roughly uniform
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, SampleWeightedRespectsWeights) {
  Rng rng(17);
  std::vector<double> weights = {0.0, 9.0, 1.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.SampleWeighted(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[1], counts[2] * 5);
}

TEST(Rng, SampleWeightedAllZeroReturnsLast) {
  Rng rng(19);
  std::vector<double> weights = {0.0, 0.0, 0.0};
  EXPECT_EQ(rng.SampleWeighted(weights), 2u);
}

TEST(Rng, ZipfSkewsTowardLowRanks) {
  Rng rng(23);
  std::vector<int> counts(20, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.NextZipf(20, 1.0)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[19]);
  // Every rank should still be reachable.
  int total = std::accumulate(counts.begin(), counts.end(), 0);
  EXPECT_EQ(total, 20000);
}

TEST(Rng, ZipfSingleElement) {
  Rng rng(29);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.NextZipf(1, 1.0), 0u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ShuffleEmptyAndSingle) {
  Rng rng(37);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{5};
  rng.Shuffle(&one);
  EXPECT_EQ(one[0], 5);
}

}  // namespace
}  // namespace kqr
