#include "graph/csr.h"

#include <gtest/gtest.h>

namespace kqr {
namespace {

TEST(Csr, EmptyGraph) {
  CsrGraph g = CsrGraph::FromUndirectedEdges(3, {});
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_arcs(), 0u);
  EXPECT_EQ(g.Degree(0), 0u);
  EXPECT_TRUE(g.Neighbors(1).empty());
}

TEST(Csr, UndirectedEdgeVisibleFromBothEnds) {
  CsrGraph g = CsrGraph::FromUndirectedEdges(2, {{0, 1, 2.0f}});
  ASSERT_EQ(g.Degree(0), 1u);
  ASSERT_EQ(g.Degree(1), 1u);
  EXPECT_EQ(g.Neighbors(0)[0].target, 1u);
  EXPECT_FLOAT_EQ(g.Neighbors(0)[0].weight, 2.0f);
  EXPECT_EQ(g.Neighbors(1)[0].target, 0u);
  EXPECT_EQ(g.num_arcs(), 2u);
}

TEST(Csr, ParallelEdgesMerged) {
  CsrGraph g =
      CsrGraph::FromUndirectedEdges(2, {{0, 1, 1.0f}, {0, 1, 3.0f}});
  ASSERT_EQ(g.Degree(0), 1u);
  EXPECT_FLOAT_EQ(g.Neighbors(0)[0].weight, 4.0f);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(0), 4.0);
}

TEST(Csr, NeighborsSortedByTarget) {
  CsrGraph g = CsrGraph::FromUndirectedEdges(
      4, {{2, 0, 1.0f}, {2, 3, 1.0f}, {2, 1, 1.0f}});
  auto n = g.Neighbors(2);
  ASSERT_EQ(n.size(), 3u);
  EXPECT_EQ(n[0].target, 0u);
  EXPECT_EQ(n[1].target, 1u);
  EXPECT_EQ(n[2].target, 3u);
}

TEST(Csr, WeightedDegreeSumsArcs) {
  CsrGraph g = CsrGraph::FromUndirectedEdges(
      3, {{0, 1, 1.5f}, {0, 2, 2.5f}});
  EXPECT_DOUBLE_EQ(g.WeightedDegree(0), 4.0);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(1), 1.5);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(2), 2.5);
}

TEST(Csr, SelfLoopCountsTwice) {
  // A self edge is materialized as two identical arcs that merge.
  CsrGraph g = CsrGraph::FromUndirectedEdges(1, {{0, 0, 1.0f}});
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_FLOAT_EQ(g.Neighbors(0)[0].weight, 2.0f);
}

TEST(Csr, IsolatedNodesHaveEmptyNeighborhoods) {
  CsrGraph g = CsrGraph::FromUndirectedEdges(5, {{1, 3, 1.0f}});
  EXPECT_EQ(g.Degree(0), 0u);
  EXPECT_EQ(g.Degree(2), 0u);
  EXPECT_EQ(g.Degree(4), 0u);
  EXPECT_EQ(g.Degree(1), 1u);
}

}  // namespace
}  // namespace kqr
