// Property tests for the v3 codec layer (common/io/codec.h): randomized
// round trips over adversarial value distributions, plus systematic
// truncation/garbage sweeps. Every decode failure must be a typed
// kCorruption — never a crash, never a silently wrong vector.

#include "common/io/codec.h"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.h"

namespace kqr {
namespace {

std::span<const std::byte> AsBytes(const std::string& s) {
  return std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(s.data()), s.size());
}

// -- Distributions -----------------------------------------------------

std::vector<uint64_t> RandomU64s(Rng* rng, size_t n) {
  std::vector<uint64_t> out(n);
  for (auto& v : out) {
    // Mix magnitudes: small ids, medium counters, full-width values.
    switch (rng->NextBounded(4)) {
      case 0: v = rng->NextBounded(16); break;
      case 1: v = rng->NextBounded(1 << 20); break;
      case 2: v = rng->Next() & 0xffffffffULL; break;
      default: v = rng->Next(); break;
    }
  }
  return out;
}

std::vector<uint64_t> SortedU64s(Rng* rng, size_t n) {
  std::vector<uint64_t> out;
  out.reserve(n);
  uint64_t acc = rng->NextBounded(1000);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(acc);
    // Runs of equal values are common in CSR offsets (empty rows).
    if (rng->NextBounded(3) != 0) acc += rng->NextBounded(1 << 16);
  }
  return out;
}

std::vector<uint32_t> RandomU32s(Rng* rng, size_t n) {
  std::vector<uint32_t> out(n);
  for (auto& v : out) {
    switch (rng->NextBounded(4)) {
      case 0: v = 0; break;
      case 1: v = static_cast<uint32_t>(rng->NextBounded(256)); break;
      case 2: v = static_cast<uint32_t>(rng->Next() & 0xffffffffULL); break;
      default:
        v = std::numeric_limits<uint32_t>::max() -
            static_cast<uint32_t>(rng->NextBounded(3));
        break;
    }
  }
  return out;
}

// -- Varints -----------------------------------------------------------

TEST(Codec, VarintRoundTripAdversarial) {
  Rng rng(7);
  for (size_t trial = 0; trial < 50; ++trial) {
    const size_t n = static_cast<size_t>(rng.NextBounded(300));
    const std::vector<uint64_t> values = RandomU64s(&rng, n);
    std::string payload;
    EncodeVarints(values, &payload);
    std::vector<uint64_t> decoded;
    ASSERT_TRUE(DecodeVarints(AsBytes(payload), n, &decoded).ok());
    EXPECT_EQ(decoded, values);
  }
}

TEST(Codec, VarintEdgeValues) {
  const std::vector<uint64_t> values = {
      0, 1, 127, 128, 16383, 16384,
      std::numeric_limits<uint64_t>::max() - 1,
      std::numeric_limits<uint64_t>::max()};
  std::string payload;
  EncodeVarints(values, &payload);
  std::vector<uint64_t> decoded;
  ASSERT_TRUE(DecodeVarints(AsBytes(payload), values.size(), &decoded).ok());
  EXPECT_EQ(decoded, values);
}

TEST(Codec, VarintEmptyAndSingle) {
  std::string payload;
  EncodeVarints({}, &payload);
  EXPECT_TRUE(payload.empty());
  std::vector<uint64_t> decoded;
  ASSERT_TRUE(DecodeVarints(AsBytes(payload), 0, &decoded).ok());
  EXPECT_TRUE(decoded.empty());

  const std::vector<uint64_t> one = {std::numeric_limits<uint64_t>::max()};
  EncodeVarints(one, &payload);
  ASSERT_TRUE(DecodeVarints(AsBytes(payload), 1, &decoded).ok());
  EXPECT_EQ(decoded, one);
}

TEST(Codec, VarintRejectsEveryTruncation) {
  Rng rng(11);
  const std::vector<uint64_t> values = RandomU64s(&rng, 40);
  std::string payload;
  EncodeVarints(values, &payload);
  std::vector<uint64_t> decoded;
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    const std::string trunc = payload.substr(0, cut);
    EXPECT_TRUE(DecodeVarints(AsBytes(trunc), values.size(), &decoded)
                    .IsCorruption())
        << "cut at " << cut;
  }
}

TEST(Codec, VarintRejectsTrailingBytes) {
  std::string payload;
  EncodeVarints(std::vector<uint64_t>{5, 6}, &payload);
  payload.push_back('\x01');
  std::vector<uint64_t> decoded;
  EXPECT_TRUE(DecodeVarints(AsBytes(payload), 2, &decoded).IsCorruption());
}

TEST(Codec, VarintRejectsOverlongAndOverflow) {
  // 11 continuation bytes: longer than any valid u64 varint.
  std::string overlong(10, '\x80');
  overlong.push_back('\x01');
  std::vector<uint64_t> decoded;
  EXPECT_TRUE(DecodeVarints(AsBytes(overlong), 1, &decoded).IsCorruption());
  // 10 bytes whose top bits overflow past 64.
  std::string overflow(9, '\x80');
  overflow.push_back('\x7f');
  EXPECT_TRUE(DecodeVarints(AsBytes(overflow), 1, &decoded).IsCorruption());
}

// -- Delta varints -----------------------------------------------------

TEST(Codec, DeltaRoundTripSortedRuns) {
  Rng rng(13);
  for (size_t trial = 0; trial < 50; ++trial) {
    const size_t n = static_cast<size_t>(rng.NextBounded(300));
    const std::vector<uint64_t> values = SortedU64s(&rng, n);
    std::string payload;
    EncodeDeltaVarints(values, &payload);
    std::vector<uint64_t> decoded;
    ASSERT_TRUE(DecodeDeltaVarints(AsBytes(payload), n, &decoded).ok());
    EXPECT_EQ(decoded, values);
  }
}

TEST(Codec, DeltaRoundTripAllEqual) {
  const std::vector<uint64_t> values(64, 42);
  std::string payload;
  EncodeDeltaVarints(values, &payload);
  std::vector<uint64_t> decoded;
  ASSERT_TRUE(
      DecodeDeltaVarints(AsBytes(payload), values.size(), &decoded).ok());
  EXPECT_EQ(decoded, values);
}

TEST(Codec, DeltaRejectsAccumulatorOverflow) {
  // First value near max, second delta pushes past 2^64.
  std::string payload;
  PutVarint64(&payload, std::numeric_limits<uint64_t>::max() - 1);
  PutVarint64(&payload, 5);
  std::vector<uint64_t> decoded;
  EXPECT_TRUE(
      DecodeDeltaVarints(AsBytes(payload), 2, &decoded).IsCorruption());
}

TEST(Codec, DeltaRejectsTruncation) {
  const std::vector<uint64_t> values = {0, 10, 10, 500, 100000};
  std::string payload;
  EncodeDeltaVarints(values, &payload);
  std::vector<uint64_t> decoded;
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_TRUE(DecodeDeltaVarints(AsBytes(payload.substr(0, cut)),
                                   values.size(), &decoded)
                    .IsCorruption());
  }
}

// -- Bit packing -------------------------------------------------------

TEST(Codec, BitPackedRoundTripAdversarial) {
  Rng rng(17);
  for (size_t trial = 0; trial < 50; ++trial) {
    const size_t n = static_cast<size_t>(rng.NextBounded(520));
    const std::vector<uint32_t> values = RandomU32s(&rng, n);
    std::string payload;
    EncodeBitPacked(values, &payload);
    std::vector<uint32_t> decoded;
    ASSERT_TRUE(DecodeBitPacked(AsBytes(payload), n, &decoded).ok());
    EXPECT_EQ(decoded, values);
  }
}

TEST(Codec, BitPackedBlockBoundaries) {
  Rng rng(19);
  // Sizes straddling the 128-value block boundary, including the empty
  // and single-value cases.
  for (size_t n : {size_t{0}, size_t{1}, kBitPackBlock - 1, kBitPackBlock,
                   kBitPackBlock + 1, 2 * kBitPackBlock,
                   2 * kBitPackBlock + 7}) {
    const std::vector<uint32_t> values = RandomU32s(&rng, n);
    std::string payload;
    EncodeBitPacked(values, &payload);
    std::vector<uint32_t> decoded;
    ASSERT_TRUE(DecodeBitPacked(AsBytes(payload), n, &decoded).ok()) << n;
    EXPECT_EQ(decoded, values);
  }
}

TEST(Codec, BitPackedAllZerosIsCompact) {
  const std::vector<uint32_t> zeros(kBitPackBlock * 3, 0);
  std::string payload;
  EncodeBitPacked(zeros, &payload);
  // Width-0 blocks carry only their width byte.
  EXPECT_EQ(payload.size(), 3u);
  std::vector<uint32_t> decoded;
  ASSERT_TRUE(DecodeBitPacked(AsBytes(payload), zeros.size(), &decoded).ok());
  EXPECT_EQ(decoded, zeros);
}

TEST(Codec, BitPackedRejectsBadWidthTruncationAndPadding) {
  std::vector<uint32_t> decoded;
  // Width byte > 32.
  std::string bad_width(1, '\x21');
  EXPECT_TRUE(DecodeBitPacked(AsBytes(bad_width), 1, &decoded).IsCorruption());

  const std::vector<uint32_t> values = {1, 2, 3, 400, 5};
  std::string payload;
  EncodeBitPacked(values, &payload);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_TRUE(DecodeBitPacked(AsBytes(payload.substr(0, cut)),
                                values.size(), &decoded)
                    .IsCorruption());
  }
  // Nonzero padding bits in the final partial block.
  std::string tampered = payload;
  tampered.back() = static_cast<char>(0xff);
  EXPECT_TRUE(
      DecodeBitPacked(AsBytes(tampered), values.size(), &decoded)
          .IsCorruption());
}

// -- ByteReader --------------------------------------------------------

TEST(Codec, ByteReaderNeverOverruns) {
  std::string payload;
  PutU32Le(&payload, 0xdeadbeef);
  PutU64Le(&payload, 0x0123456789abcdefULL);
  ByteReader reader(AsBytes(payload));
  auto u32 = reader.U32Le();
  ASSERT_TRUE(u32.ok());
  EXPECT_EQ(*u32, 0xdeadbeefu);
  auto u64 = reader.U64Le();
  ASSERT_TRUE(u64.ok());
  EXPECT_EQ(*u64, 0x0123456789abcdefULL);
  EXPECT_TRUE(reader.done());
  EXPECT_TRUE(reader.U32Le().status().IsCorruption());
  EXPECT_TRUE(reader.Bytes(1).status().IsCorruption());
}

TEST(Codec, FnvMatchesKnownVector) {
  // FNV-1a 64 of the empty input is the basis; of "a" a published value.
  EXPECT_EQ(Fnv1aBytes(kFnv64Basis, "", 0), kFnv64Basis);
  EXPECT_EQ(Fnv1aBytes(kFnv64Basis, "a", 1), 0xaf63dc4c8601ec8cULL);
}

TEST(Codec, FnvWordsDetectsEveryBitFlip) {
  // The word-folded variant (section payload checksum): empty input is
  // the basis, sub-word inputs fall back to byte folding, and flipping
  // any single bit — in the word-aligned body or the byte tail — changes
  // the hash.
  EXPECT_EQ(Fnv1aWords({}), kFnv64Basis);
  const std::string one = "a";
  EXPECT_EQ(Fnv1aWords(AsBytes(one)), Fnv1aBytes(kFnv64Basis, "a", 1));

  Rng rng(4242);
  std::string data(19, '\0');  // 2 full words + a 3-byte tail
  for (char& c : data) c = static_cast<char>(rng.Next() & 0xff);
  const uint64_t base = Fnv1aWords(AsBytes(data));
  for (size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = data;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      EXPECT_NE(Fnv1aWords(AsBytes(corrupt)), base)
          << "bit " << bit << " of byte " << byte;
    }
  }
}

}  // namespace
}  // namespace kqr
