// Functional contract of the kqr::Server front-end: options validation,
// bit-identical batched results, deadline propagation (queued and
// mid-pipeline), load shedding, and graceful drain. The concurrency
// contract (many submitters racing) lives in server_concurrency_test.cc.

#include "server/server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <future>
#include <vector>

#include "core/engine_builder.h"
#include "test_fixtures.h"

namespace kqr {
namespace {

std::shared_ptr<const ServingModel> MakeModel(EngineOptions options = {}) {
  auto model =
      EngineBuilder(options).Build(testing_fixtures::MakeMicroDblp());
  KQR_CHECK(model.ok()) << model.status().ToString();
  return std::move(model).ValueOrDie();
}

std::vector<TermId> QueryTerms(const ServingModel& model) {
  auto terms = model.ResolveQuery("uncertain query");
  KQR_CHECK(terms.ok()) << terms.status().ToString();
  return std::move(terms).ValueOrDie();
}

bool SameRanking(const std::vector<ReformulatedQuery>& a,
                 const std::vector<ReformulatedQuery>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].terms != b[i].terms) return false;
    // Bit-identical: batching must change scheduling, never answers.
    if (std::memcmp(&a[i].score, &b[i].score, sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

uint64_t CounterNow(const ServingModel& model, const std::string& name) {
  return model.MetricsNow().CounterValue(name);
}

TEST(Server, OptionsValidate) {
  EXPECT_TRUE(ServerOptions{}.Validate().ok());

  ServerOptions no_workers;
  no_workers.num_workers = 0;
  EXPECT_TRUE(no_workers.Validate().IsInvalidArgument());

  ServerOptions no_queue;
  no_queue.queue_capacity = 0;
  EXPECT_TRUE(no_queue.Validate().IsInvalidArgument());

  ServerOptions no_batch;
  no_batch.max_batch = 0;
  EXPECT_TRUE(no_batch.Validate().IsInvalidArgument());

  ServerOptions negative_deadline;
  negative_deadline.default_deadline_seconds = -1.0;
  EXPECT_TRUE(negative_deadline.Validate().IsInvalidArgument());
}

TEST(Server, CreateRejectsBadInputs) {
  ServerOptions bad;
  bad.num_workers = 0;
  EXPECT_TRUE(MakeModel() != nullptr);
  EXPECT_TRUE(Server::Create(MakeModel(), bad).status().IsInvalidArgument());
  EXPECT_TRUE(Server::Create(nullptr, ServerOptions{})
                  .status()
                  .IsInvalidArgument());
}

TEST(Server, BlockingReformulateMatchesDirectCall) {
  auto model = MakeModel();
  const std::vector<TermId> terms = QueryTerms(*model);
  auto direct = model->ReformulateTerms(terms, 5);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  auto server = Server::Create(model);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto served = (*server)->Reformulate(terms, 5);
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_TRUE(SameRanking(*served, *direct));
}

TEST(Server, BatchedResultsBitIdenticalToSequential) {
  // Two fresh lazy models: the server one races its workers through
  // batched term preparation; the reference one prepares serially. The
  // rankings must still agree bit for bit.
  auto reference_model = MakeModel();
  auto server_model = MakeModel();
  const std::vector<TermId> terms = QueryTerms(*reference_model);

  // A few distinct queries so batches mix terms.
  std::vector<std::vector<TermId>> queries = {
      terms, {terms[0]}, {terms[1]}, {terms[1], terms[0]}};
  std::vector<std::vector<ReformulatedQuery>> expected;
  for (const auto& q : queries) {
    auto r = reference_model->ReformulateTerms(q, 5);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    expected.push_back(std::move(*r));
  }

  ServerOptions opts;
  opts.num_workers = 2;
  opts.max_batch = 4;
  auto server = Server::Create(server_model, opts);
  ASSERT_TRUE(server.ok());

  constexpr size_t kRounds = 25;
  std::vector<std::future<ServeResult>> futures;
  for (size_t round = 0; round < kRounds; ++round) {
    for (const auto& q : queries) {
      ServerRequest request;
      request.terms = q;
      request.k = 5;
      futures.push_back((*server)->Submit(std::move(request)));
    }
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    auto result = futures[i].get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(SameRanking(*result, expected[i % queries.size()]))
        << "request " << i;
  }
}

TEST(Server, ExpiredDeadlineFailsMidPipelineNeverPartial) {
  // The pipeline-level gate, independent of queueing: a context whose
  // deadline already passed fails between stages with kDeadlineExceeded.
  auto model = MakeModel();
  const std::vector<TermId> terms = QueryTerms(*model);
  RequestContext ctx;
  ctx.deadline =
      std::chrono::steady_clock::now() - std::chrono::seconds(1);
  auto result = model->ReformulateTerms(terms, 5, &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
}

TEST(Server, RequestDeadlinePropagatesIntoPipeline) {
  auto model = MakeModel();
  const std::vector<TermId> terms = QueryTerms(*model);
  auto server = Server::Create(model);
  ASSERT_TRUE(server.ok());
  // A deadline far too tight to serve: whether it expires while queued or
  // between pipeline stages, the caller sees kDeadlineExceeded.
  auto result = (*server)->Reformulate(terms, 5, Deadline::After(1e-9));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
  // A generous deadline serves normally.
  auto relaxed = (*server)->Reformulate(terms, 5, Deadline::After(30.0));
  EXPECT_TRUE(relaxed.ok()) << relaxed.status().ToString();
}

TEST(Server, DefaultDeadlineAppliesToRequestsWithoutOne) {
  auto model = MakeModel();
  const std::vector<TermId> terms = QueryTerms(*model);
  ServerOptions opts;
  opts.default_deadline_seconds = 1e-9;
  auto server = Server::Create(model, opts);
  ASSERT_TRUE(server.ok());
  auto result = (*server)->Reformulate(terms, 5);  // no per-request deadline
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded());
}

TEST(Server, NegativeDeadlineRejected) {
  auto model = MakeModel();
  auto server = Server::Create(model);
  ASSERT_TRUE(server.ok());
  ServerRequest request;
  request.terms = QueryTerms(*model);
  request.k = 5;
  request.deadline_seconds = -0.5;
  auto result = (*server)->Submit(std::move(request)).get();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(Server, BadQueryReturnsTypedStatusThroughServer) {
  auto model = MakeModel();
  auto server = Server::Create(model);
  ASSERT_TRUE(server.ok());
  auto empty = (*server)->Reformulate({}, 5);
  ASSERT_FALSE(empty.ok());
  EXPECT_TRUE(empty.status().IsInvalidArgument());
  auto zero_k = (*server)->Reformulate(QueryTerms(*model), 0);
  ASSERT_FALSE(zero_k.ok());
  EXPECT_TRUE(zero_k.status().IsInvalidArgument());
}

TEST(Server, ShedsWithUnavailableWhenQueueFull) {
  auto model = MakeModel();
  const std::vector<TermId> terms = QueryTerms(*model);
  ServerOptions opts;
  opts.num_workers = 1;
  opts.queue_capacity = 1;
  opts.max_batch = 1;
  auto server = Server::Create(model, opts);
  ASSERT_TRUE(server.ok());

  // Enqueueing is orders of magnitude faster than serving, so a burst
  // against a one-slot queue must shed.
  constexpr size_t kBurst = 400;
  std::vector<std::future<ServeResult>> futures;
  futures.reserve(kBurst);
  for (size_t i = 0; i < kBurst; ++i) {
    ServerRequest request;
    request.terms = terms;
    request.k = 5;
    futures.push_back((*server)->Submit(std::move(request)));
  }
  size_t ok = 0, shed = 0;
  for (auto& f : futures) {
    auto result = f.get();
    if (result.ok()) {
      ++ok;
    } else {
      // Shed requests carry a typed status and no partial results.
      ASSERT_TRUE(result.status().IsUnavailable())
          << result.status().ToString();
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, kBurst);
  EXPECT_GT(shed, 0u);
  EXPECT_GT(ok, 0u);  // admission still serves what it admits
  EXPECT_EQ(CounterNow(*model, "kqr_server_shed_total"), shed);

  // The server still serves normally after the overload burst.
  auto after = (*server)->Reformulate(terms, 5);
  EXPECT_TRUE(after.ok()) << after.status().ToString();
}

TEST(Server, DrainCompletesInFlightAndRefusesNewWork) {
  auto model = MakeModel();
  const std::vector<TermId> terms = QueryTerms(*model);
  ServerOptions opts;
  opts.num_workers = 2;
  opts.queue_capacity = 128;
  auto server = Server::Create(model, opts);
  ASSERT_TRUE(server.ok());

  std::vector<std::future<ServeResult>> futures;
  for (size_t i = 0; i < 64; ++i) {
    ServerRequest request;
    request.terms = terms;
    request.k = 5;
    futures.push_back((*server)->Submit(std::move(request)));
  }
  (*server)->Drain();
  EXPECT_TRUE((*server)->draining());
  EXPECT_EQ((*server)->queue_depth(), 0u);

  // Every admitted request completed with a definite outcome.
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    auto result = f.get();
    EXPECT_TRUE(result.ok()) << result.status().ToString();
  }

  // Post-drain submissions are shed with kUnavailable.
  ServerRequest late;
  late.terms = terms;
  late.k = 5;
  auto refused = (*server)->Submit(std::move(late)).get();
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsUnavailable());

  (*server)->Drain();  // idempotent
}

TEST(Server, MetricsAccountForEveryOutcome) {
  auto model = MakeModel();
  const std::vector<TermId> terms = QueryTerms(*model);
  auto server = Server::Create(model);
  ASSERT_TRUE(server.ok());

  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*server)->Reformulate(terms, 5).ok());
  }
  ASSERT_TRUE((*server)
                  ->Reformulate(terms, 5, Deadline::After(1e-9))
                  .status()
                  .IsDeadlineExceeded());
  (*server)->Drain();

  EXPECT_EQ(CounterNow(*model, "kqr_server_submitted_total"), 6u);
  EXPECT_EQ(CounterNow(*model, "kqr_server_completed_total"), 5u);
  EXPECT_EQ(CounterNow(*model, "kqr_server_deadline_exceeded_total"), 1u);
  EXPECT_EQ(CounterNow(*model, "kqr_server_errors_total"), 0u);
  const MetricsSnapshot snap = model->MetricsNow();
  const HistogramSnapshot* batches = snap.Histogram("kqr_server_batch_size");
  ASSERT_NE(batches, nullptr);
  EXPECT_GT(batches->count, 0u);
}

TEST(Server, CallbackSubmitRunsExactlyOnce) {
  auto model = MakeModel();
  const std::vector<TermId> terms = QueryTerms(*model);
  auto server = Server::Create(model);
  ASSERT_TRUE(server.ok());
  std::promise<ServeResult> done;
  auto future = done.get_future();
  ServerRequest request;
  request.terms = terms;
  request.k = 5;
  (*server)->Submit(std::move(request), [&done](ServeResult result) {
    done.set_value(std::move(result));  // throws if invoked twice
  });
  auto result = future.get();
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  (*server)->Drain();
}

TEST(Server, SecondCreateOnSameModelIsAlreadyExists) {
  // One front-end per model: the server claims the ServingModel at
  // Create and a second claim is a typed refusal, not a silent second
  // worker pool double-counting the model's server metrics.
  auto model = MakeModel();
  const std::vector<TermId> terms = QueryTerms(*model);
  auto first = Server::Create(model);
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  auto second = Server::Create(model);
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsAlreadyExists())
      << second.status().ToString();

  // The refusal did not disturb the holder.
  EXPECT_TRUE((*first)->Reformulate(terms, 5).ok());
  (*first)->Drain();

  // Drain releases the claim: a replacement server (the hot-swap
  // rollover shape, shard/shard_server.cc) fronts the model cleanly.
  auto third = Server::Create(model);
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  EXPECT_TRUE((*third)->Reformulate(terms, 5).ok());
  (*third)->Drain();
}

TEST(Server, EveryPostDrainEntryPointShedsWithUnavailable) {
  // Submit-after-Drain must be the same typed kUnavailable on all three
  // entry points — future, callback, and blocking — never a hang, a
  // crash, or an untyped error.
  auto model = MakeModel();
  const std::vector<TermId> terms = QueryTerms(*model);
  auto server = Server::Create(model);
  ASSERT_TRUE(server.ok());
  (*server)->Drain();

  ServerRequest via_future;
  via_future.terms = terms;
  via_future.k = 5;
  auto future_result = (*server)->Submit(std::move(via_future)).get();
  ASSERT_FALSE(future_result.ok());
  EXPECT_TRUE(future_result.status().IsUnavailable());

  ServerRequest via_callback;
  via_callback.terms = terms;
  via_callback.k = 5;
  std::promise<ServeResult> done;
  auto delivered = done.get_future();
  (*server)->Submit(std::move(via_callback), [&done](ServeResult result) {
    done.set_value(std::move(result));  // throws if invoked twice
  });
  ASSERT_EQ(delivered.wait_for(std::chrono::seconds(5)),
            std::future_status::ready);
  auto callback_result = delivered.get();
  ASSERT_FALSE(callback_result.ok());
  EXPECT_TRUE(callback_result.status().IsUnavailable());

  auto blocking_result = (*server)->Reformulate(terms, 5);
  ASSERT_FALSE(blocking_result.ok());
  EXPECT_TRUE(blocking_result.status().IsUnavailable());

  EXPECT_EQ(CounterNow(*model, "kqr_server_shed_total"), 3u);
}

TEST(Server, DestructorDrainsOutstandingWork) {
  auto model = MakeModel();
  const std::vector<TermId> terms = QueryTerms(*model);
  std::vector<std::future<ServeResult>> futures;
  {
    auto server = Server::Create(model);
    ASSERT_TRUE(server.ok());
    for (size_t i = 0; i < 16; ++i) {
      ServerRequest request;
      request.terms = terms;
      request.k = 5;
      futures.push_back((*server)->Submit(std::move(request)));
    }
    // Server destroyed here with work still queued.
  }
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_TRUE(f.get().ok());
  }
}

}  // namespace
}  // namespace kqr
