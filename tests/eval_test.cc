#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.h"
#include "eval/experiment.h"
#include "eval/judge.h"
#include "eval/metrics.h"
#include "eval/table_printer.h"

namespace kqr {
namespace {

TEST(Metrics, PrecisionAtN) {
  std::vector<bool> judgments = {true, false, true, true};
  EXPECT_DOUBLE_EQ(PrecisionAtN(judgments, 1), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtN(judgments, 2), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtN(judgments, 4), 0.75);
  // Short rankings count missing slots as misses.
  EXPECT_DOUBLE_EQ(PrecisionAtN(judgments, 8), 3.0 / 8.0);
  EXPECT_DOUBLE_EQ(PrecisionAtN({}, 5), 0.0);
  EXPECT_DOUBLE_EQ(PrecisionAtN(judgments, 0), 0.0);
}

TEST(Metrics, MeanPrecisionAtN) {
  std::vector<std::vector<bool>> per_query = {{true, true},
                                              {false, false}};
  EXPECT_DOUBLE_EQ(MeanPrecisionAtN(per_query, 2), 0.5);
  EXPECT_DOUBLE_EQ(MeanPrecisionAtN({}, 2), 0.0);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter printer({"name", "value"});
  printer.AddRow({"short", "1"});
  printer.AddRow({"a much longer cell", "23456"});
  std::ostringstream out;
  printer.Print(out);
  std::string s = out.str();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("a much longer cell"), std::string::npos);
  // Header separator lines present.
  EXPECT_NE(s.find("+--"), std::string::npos);
}

TEST(TablePrinter, FormatHelpers) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
  EXPECT_EQ(FormatSeconds(2.5), "2.50 s");
  EXPECT_EQ(FormatSeconds(0.0125), "12.50 ms");
  EXPECT_EQ(FormatSeconds(0.0000451), "45.1 us");
}

class EvalIntegration : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DblpOptions dblp;
    dblp.num_authors = 150;
    dblp.num_papers = 500;
    dblp.num_venues = 24;
    auto ctx = MakeDblpContext(dblp);
    KQR_CHECK(ctx.ok()) << ctx.status().ToString();
    ctx_ = new ExperimentContext(std::move(*ctx));
  }
  static void TearDownTestSuite() {
    delete ctx_;
    ctx_ = nullptr;
  }

  static ExperimentContext* ctx_;
};

ExperimentContext* EvalIntegration::ctx_ = nullptr;

TEST_F(EvalIntegration, SamplerProducesResolvableQueries) {
  QuerySampler sampler(*ctx_->model, 42);
  for (size_t len = 1; len <= 4; ++len) {
    auto queries = sampler.SampleQueries(5, len);
    ASSERT_EQ(queries.size(), 5u);
    for (const auto& q : queries) {
      EXPECT_EQ(q.size(), len);
      for (TermId t : q) {
        EXPECT_LT(t, ctx_->model->vocab().size());
      }
      // Distinct terms within one query.
      for (size_t i = 0; i < q.size(); ++i) {
        for (size_t j = i + 1; j < q.size(); ++j) {
          EXPECT_NE(q[i], q[j]);
        }
      }
    }
  }
}

TEST_F(EvalIntegration, SamplerDeterministic) {
  QuerySampler a(*ctx_->model, 42);
  QuerySampler b(*ctx_->model, 42);
  EXPECT_EQ(a.SampleQuery(3), b.SampleQuery(3));
}

TEST_F(EvalIntegration, MixedSetShapes) {
  QuerySampler sampler(*ctx_->model, 42);
  auto queries = sampler.SampleMixedSet(10);
  ASSERT_EQ(queries.size(), 10u);
  for (const auto& q : queries) {
    EXPECT_GE(q.size(), 2u);
    EXPECT_LE(q.size(), 3u);
  }
}

TEST_F(EvalIntegration, TitleQueriesComeFromPapers) {
  QuerySampler sampler(*ctx_->model, 42);
  auto queries = sampler.SampleTitleQueries(19);
  ASSERT_EQ(queries.size(), 19u);
  const Vocabulary& vocab = ctx_->model->vocab();
  auto title_field = vocab.FindField("papers", "title");
  ASSERT_TRUE(title_field.has_value());
  for (const auto& q : queries) {
    EXPECT_GE(q.size(), 2u);
    EXPECT_LE(q.size(), 4u);
    for (TermId t : q) EXPECT_EQ(vocab.field_of(t), *title_field);
  }
}

TEST_F(EvalIntegration, JudgeAcceptsTopicalReformulation) {
  TopicJudge judge(ctx_->corpus, *ctx_->model);
  QuerySampler sampler(*ctx_->model, 123);
  auto query = sampler.SampleQuery(2);
  auto results = ctx_->model->ReformulateTerms(query, 10);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_FALSE(results->empty());
  auto judgments = judge.JudgeRanking(query, *results);
  EXPECT_EQ(judgments.size(), results->size());
  // At least one reformulation of a topical query should be judged
  // relevant at these corpus sizes.
  bool any = false;
  for (bool b : judgments) any = any || b;
  EXPECT_TRUE(any);
}

TEST_F(EvalIntegration, JudgeRejectsIdentityAndMismatchedArity) {
  TopicJudge judge(ctx_->corpus, *ctx_->model);
  QuerySampler sampler(*ctx_->model, 99);
  auto query = sampler.SampleQuery(2);
  ReformulatedQuery identity;
  identity.terms = query;
  identity.is_identity = true;
  EXPECT_FALSE(judge.IsRelevant(query, identity));

  ReformulatedQuery wrong_arity;
  wrong_arity.terms = {query[0]};
  EXPECT_FALSE(judge.IsRelevant(query, wrong_arity));
}

TEST_F(EvalIntegration, JudgeTopicAlignment) {
  TopicJudge judge(ctx_->corpus, *ctx_->model);
  // Two stems of the same topic align.
  auto terms = ctx_->model->ResolveQuery("probabilistic uncertain");
  ASSERT_TRUE(terms.ok());
  EXPECT_TRUE(judge.TopicallyAligned((*terms)[0], (*terms)[1]));
  auto cross = ctx_->model->ResolveQuery("probabilistic camping");
  if (cross.ok()) {
    EXPECT_FALSE(judge.TopicallyAligned((*cross)[0], (*cross)[1]));
  }
}

TEST_F(EvalIntegration, ResultSizeMetricPositiveForRealQueries) {
  QuerySampler sampler(*ctx_->model, 7);
  auto queries = sampler.SampleQueries(3, 2);
  std::vector<std::vector<ReformulatedQuery>> per_query;
  for (const auto& q : queries) {
    auto ranking = ctx_->model->ReformulateTerms(q, 5);
    ASSERT_TRUE(ranking.ok()) << ranking.status().ToString();
    per_query.push_back(std::move(*ranking));
  }
  double mean = MeanResultSize(*ctx_->model, per_query);
  EXPECT_GE(mean, 0.0);
}

TEST_F(EvalIntegration, QueryDistanceMetricInRange) {
  QuerySampler sampler(*ctx_->model, 7);
  auto queries = sampler.SampleQueries(3, 2);
  std::vector<std::vector<ReformulatedQuery>> per_query;
  for (const auto& q : queries) {
    auto ranking = ctx_->model->ReformulateTerms(q, 5);
    ASSERT_TRUE(ranking.ok()) << ranking.status().ToString();
    per_query.push_back(std::move(*ranking));
  }
  double dist = MeanQueryDistance(ctx_->model->graph(), queries,
                                  per_query);
  EXPECT_GE(dist, 0.0);
  EXPECT_LE(dist, 8.0);
}

}  // namespace
}  // namespace kqr
