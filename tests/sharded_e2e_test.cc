// Multi-process end-to-end test for term-sharded serving (DESIGN.md §8):
// real kqr_shardd child processes, a ShardRouter over loopback, and the
// determinism contract checked topology by topology — the merged answers
// of 1, 2 and 4 single-replica groups AND of a replicated 2x2 fleet must
// fingerprint bit-identically to a single-process ReformulateTerms over
// the same model file. Two survival cases run under continuous traffic:
// a hot model swap must shed nothing across the rollover, and killing
// one replica per group must cost zero query outcomes — the router's
// failover retries every sub-batch the dead replicas were carrying on
// their live siblings within the same deadline.
//
// All shards open the same v3 model via the mmap path (--model), which is
// exactly the production shape: partition decides query ownership, not
// data placement.

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine_builder.h"
#include "datagen/dblp_gen.h"
#include "shard/router.h"
#include "shardd_harness.h"

namespace kqr {
namespace {

// Small enough that four child processes regenerate it quickly on a
// one-core CI runner; rich enough that rankings are nontrivial.
DblpOptions DemoOptions() {
  DblpOptions options;
  options.num_authors = 60;
  options.num_papers = 200;
  options.num_venues = 10;
  options.seed = 99;
  return options;
}

std::vector<std::string> DemoArgs() {
  return {"--demo-authors", "60", "--demo-papers", "200",
          "--demo-venues", "10", "--demo-seed",   "99"};
}

constexpr size_t kTopK = 5;

uint64_t Fnv1a(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Order- and bit-exact fingerprint of one ServeResult: full ranking
/// (terms + raw score bits) when OK, folded status code when not.
uint64_t Fingerprint(const ServeResult& result) {
  uint64_t h = 0xcbf29ce484222325ULL;
  if (!result.ok()) {
    return Fnv1a(h, 0xbad0000 + static_cast<uint64_t>(result.status().code()));
  }
  h = Fnv1a(h, result->size());
  for (const ReformulatedQuery& q : *result) {
    for (TermId t : q.terms) h = Fnv1a(h, t);
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(q.score));
    std::memcpy(&bits, &q.score, sizeof(bits));
    h = Fnv1a(h, bits);
  }
  return h;
}

class ShardedE2E : public ::testing::Test {
 public:
  static void SetUpTestSuite() {
    auto corpus = GenerateDblp(DemoOptions());
    ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
    auto model = EngineBuilder().Build(std::move(corpus->db));
    ASSERT_TRUE(model.ok()) << model.status().ToString();
    model_ = new std::shared_ptr<const ServingModel>(std::move(*model));

    model_path_ = new std::string(::testing::TempDir() +
                                  "/sharded_e2e_model.kqr3");
    ASSERT_TRUE(EngineBuilder::SaveModel(**model_, *model_path_).ok());

    // Deterministic query corpus: mixed one- and two-term queries
    // sweeping the vocabulary (term ids are dense, so every id is valid).
    queries_ = new std::vector<std::vector<TermId>>();
    const auto vocab_size = static_cast<TermId>((*model_)->vocab().size());
    for (uint64_t i = 0; i < 60; ++i) {
      std::vector<TermId> q;
      q.push_back(static_cast<TermId>((i * 131) % vocab_size));
      if (i % 3 != 0) {
        q.push_back(static_cast<TermId>((i * 937 + 11) % vocab_size));
      }
      queries_->push_back(std::move(q));
    }

    // The single-process reference every fleet size must reproduce.
    reference_ = new std::vector<uint64_t>();
    for (const auto& q : *queries_) {
      auto local = (*model_)->ReformulateTerms(q, kTopK);
      reference_->push_back(Fingerprint(
          local.ok() ? ServeResult(std::move(*local))
                     : ServeResult(local.status())));
    }
  }

  static void TearDownTestSuite() {
    delete reference_;
    delete queries_;
    delete model_path_;
    delete model_;
    reference_ = nullptr;
    queries_ = nullptr;
    model_path_ = nullptr;
    model_ = nullptr;
  }

  static std::vector<std::string> ShardArgs() {
    std::vector<std::string> args = DemoArgs();
    args.push_back("--model");
    args.push_back(*model_path_);
    args.push_back("--workers");
    args.push_back("2");
    return args;
  }

  static std::shared_ptr<const ServingModel>* model_;
  static std::string* model_path_;
  static std::vector<std::vector<TermId>>* queries_;
  static std::vector<uint64_t>* reference_;
};

std::shared_ptr<const ServingModel>* ShardedE2E::model_ = nullptr;
std::string* ShardedE2E::model_path_ = nullptr;
std::vector<std::vector<TermId>>* ShardedE2E::queries_ = nullptr;
std::vector<uint64_t>* ShardedE2E::reference_ = nullptr;

/// Spawns `groups` x `replicas` daemons, routes the query corpus
/// through them, and requires every answer to fingerprint-match the
/// single-process reference.
void ExpectFleetMatchesReference(size_t groups, size_t replicas,
                                 const std::vector<std::vector<TermId>>& queries,
                                 const std::vector<uint64_t>& reference) {
  std::vector<ShardProcess> fleet(groups * replicas);
  FleetTopology topology;
  topology.groups.resize(groups);
  for (size_t g = 0; g < groups; ++g) {
    for (size_t r = 0; r < replicas; ++r) {
      ShardProcess& proc = fleet[g * replicas + r];
      ASSERT_TRUE(proc.Start(ShardedE2E::ShardArgs()))
          << "replica " << g << "." << r;
      topology.groups[g].push_back({"127.0.0.1", proc.port()});
    }
  }
  auto router = ShardRouter::Connect(std::move(topology));
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  auto results =
      (*router)->ReformulateBatch(queries, kTopK, Deadline::After(60.0));
  ASSERT_EQ(results.size(), queries.size());
  size_t mismatches = 0;
  for (size_t i = 0; i < results.size(); ++i) {
    if (Fingerprint(results[i]) != reference[i]) {
      ++mismatches;
      ADD_FAILURE() << groups << "x" << replicas
                    << " fleet diverges on query " << i << ": "
                    << results[i].status().ToString();
    }
  }
  EXPECT_EQ(mismatches, 0u);
  const RouterStats rs = (*router)->stats();
  EXPECT_EQ(rs.unavailable, 0u);
  EXPECT_EQ(rs.deadline_exceeded, 0u);
  EXPECT_EQ(rs.corrupt_frames, 0u);
  EXPECT_EQ(rs.failovers, 0u) << "healthy fleet must not fail over";
}

TEST_F(ShardedE2E, OneShardFleetIsBitIdenticalToLocal) {
  ExpectFleetMatchesReference(1, 1, *queries_, *reference_);
}

TEST_F(ShardedE2E, TwoShardFleetIsBitIdenticalToLocal) {
  ExpectFleetMatchesReference(2, 1, *queries_, *reference_);
}

TEST_F(ShardedE2E, FourShardFleetIsBitIdenticalToLocal) {
  ExpectFleetMatchesReference(4, 1, *queries_, *reference_);
}

TEST_F(ShardedE2E, ReplicatedTwoByTwoFleetIsBitIdenticalToLocal) {
  ExpectFleetMatchesReference(2, 2, *queries_, *reference_);
}

TEST_F(ShardedE2E, ReplicaDeathUnderTrafficLosesNoQueries) {
  // 2 groups x 2 replicas. Mid-traffic, one replica of EVERY group is
  // SIGKILLed. The router's failover must re-send whatever those
  // replicas were carrying to their live siblings within the same batch
  // deadline — zero kUnavailable / kDeadlineExceeded outcomes anywhere,
  // including the batches in flight at kill time, and every answer
  // still bit-identical to single-process serving.
  constexpr size_t kGroups = 2;
  constexpr size_t kReplicas = 2;
  std::vector<ShardProcess> fleet(kGroups * kReplicas);
  FleetTopology topology;
  topology.groups.resize(kGroups);
  for (size_t g = 0; g < kGroups; ++g) {
    for (size_t r = 0; r < kReplicas; ++r) {
      ShardProcess& proc = fleet[g * kReplicas + r];
      ASSERT_TRUE(proc.Start(ShardArgs())) << "replica " << g << "." << r;
      topology.groups[g].push_back({"127.0.0.1", proc.port()});
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> batches{0};
  std::atomic<uint64_t> degraded{0};
  std::atomic<uint64_t> mismatched{0};
  RouterStats traffic_stats;  // written by the thread, read after join
  std::thread traffic([&] {
    auto router = ShardRouter::Connect(topology);
    if (!router.ok()) {
      mismatched.store(1);
      return;
    }
    while (!stop.load(std::memory_order_relaxed)) {
      auto results =
          (*router)->ReformulateBatch(*queries_, kTopK, Deadline::After(60.0));
      for (size_t i = 0; i < results.size(); ++i) {
        const StatusCode code = results[i].status().code();
        if (code == StatusCode::kUnavailable ||
            code == StatusCode::kDeadlineExceeded) {
          degraded.fetch_add(1);
        } else if (Fingerprint(results[i]) != (*reference_)[i]) {
          mismatched.fetch_add(1);
        }
      }
      batches.fetch_add(1);
    }
    traffic_stats = (*router)->stats();
  });

  // Let traffic establish, then kill replica 0 of every group while
  // batches are in flight.
  while (batches.load() < 2) std::this_thread::yield();
  for (size_t g = 0; g < kGroups; ++g) fleet[g * kReplicas + 0].Kill();

  // The fleet must keep answering on the surviving replicas.
  const uint64_t at_kill = batches.load();
  while (batches.load() < at_kill + 3) std::this_thread::yield();
  stop.store(true);
  traffic.join();

  EXPECT_EQ(degraded.load(), 0u)
      << "replica death leaked typed degradation past the failover path";
  EXPECT_EQ(mismatched.load(), 0u) << "failover changed answers";
  EXPECT_GE(traffic_stats.failovers, 1u)
      << "the kill must have been absorbed by failover, not luck";
}

TEST_F(ShardedE2E, HotModelSwapShedsNothingUnderTraffic) {
  ShardProcess shardd;
  ASSERT_TRUE(shardd.Start(ShardArgs()));

  // Traffic thread: its own router (routers are single-threaded by
  // contract), continuous batches. Every single query must succeed —
  // one kUnavailable anywhere is a failed rollover.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> batches{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> failed{0};
  std::thread traffic([&] {
    auto router = ShardRouter::Connect(
        FleetTopology::SingleReplica({{"127.0.0.1", shardd.port()}}));
    if (!router.ok()) {
      failed.store(1);
      return;
    }
    while (!stop.load(std::memory_order_relaxed)) {
      auto results =
          (*router)->ReformulateBatch(*queries_, kTopK, Deadline::After(60.0));
      for (size_t i = 0; i < results.size(); ++i) {
        const StatusCode code = results[i].status().code();
        if (code == StatusCode::kUnavailable ||
            code == StatusCode::kDeadlineExceeded) {
          shed.fetch_add(1);
        } else if (Fingerprint(results[i]) != (*reference_)[i]) {
          failed.fetch_add(1);
        }
      }
      batches.fetch_add(1);
    }
  });

  // Let traffic establish, then swap to the same model file (content-
  // identical, so fingerprints keep matching while the generation and
  // the serving stack roll over underneath the load).
  auto control = ShardRouter::Connect(
      FleetTopology::SingleReplica({{"127.0.0.1", shardd.port()}}));
  ASSERT_TRUE(control.ok());
  while (batches.load() < 2) std::this_thread::yield();
  auto swap = (*control)->SwapModel({0, 0}, *model_path_, Deadline::After(60.0));
  while (batches.load() < 5) std::this_thread::yield();
  stop.store(true);
  traffic.join();

  ASSERT_TRUE(swap.ok()) << swap.status().ToString();
  ASSERT_TRUE(swap->status.ok()) << swap->status.ToString();
  EXPECT_EQ(swap->model_generation, 2u);
  EXPECT_EQ(shed.load(), 0u) << "hot swap shed requests";
  EXPECT_EQ(failed.load(), 0u) << "hot swap changed answers";
  auto health = (*control)->Health({0, 0}, Deadline::After(10.0));
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->model_generation, 2u);
}

}  // namespace
}  // namespace kqr
