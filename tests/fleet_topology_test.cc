// Validation surface of the fleet/deadline API redesign: FleetTopology
// shapes (empty fleets, empty groups, duplicate or malformed
// addresses), RouterOptions, ShardRouter::Connect's rejection of
// invalid topologies, the kqr::Deadline value type, and the deprecated
// flat-fleet Connect shim (which must build a 1-replica-per-group
// topology, not a different routing function).

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/engine_builder.h"
#include "core/serving_model.h"
#include "shard/partition.h"
#include "shard/router.h"
#include "shard/shard_server.h"
#include "test_fixtures.h"

namespace kqr {
namespace {

std::shared_ptr<const ServingModel> MakeModel() {
  auto model = EngineBuilder().Build(testing_fixtures::MakeMicroDblp());
  KQR_CHECK(model.ok());
  return std::move(model).ValueOrDie();
}

TEST(FleetTopology, SingleReplicaFactoryBuildsOneReplicaGroups) {
  const FleetTopology topology = FleetTopology::SingleReplica(
      {{"127.0.0.1", 7001}, {"127.0.0.1", 7002}, {"127.0.0.1", 7003}});
  EXPECT_EQ(topology.num_groups(), 3u);
  EXPECT_EQ(topology.num_replicas(), 3u);
  for (const auto& group : topology.groups) {
    ASSERT_EQ(group.size(), 1u);
  }
  EXPECT_EQ(topology.groups[1][0].port, 7002);
  EXPECT_TRUE(topology.Validate().ok());
}

TEST(FleetTopology, ReplicatedFactoryKeepsGroupShape) {
  const FleetTopology topology = FleetTopology::Replicated(
      {{{"127.0.0.1", 7001}, {"127.0.0.1", 7002}},
       {{"127.0.0.1", 7003}, {"127.0.0.1", 7004}}});
  EXPECT_EQ(topology.num_groups(), 2u);
  EXPECT_EQ(topology.num_replicas(), 4u);
  EXPECT_TRUE(topology.Validate().ok());
}

TEST(FleetTopology, ValidateRejectsEmptyFleet) {
  EXPECT_TRUE(FleetTopology{}.Validate().IsInvalidArgument());
}

TEST(FleetTopology, ValidateRejectsGroupWithZeroReplicas) {
  FleetTopology topology;
  topology.groups = {{{"127.0.0.1", 7001}}, {}};
  EXPECT_TRUE(topology.Validate().IsInvalidArgument());
}

TEST(FleetTopology, ValidateRejectsDuplicateAddressAcrossGroups) {
  FleetTopology topology;
  topology.groups = {{{"127.0.0.1", 7001}},
                     {{"127.0.0.1", 7002}, {"127.0.0.1", 7001}}};
  EXPECT_TRUE(topology.Validate().IsInvalidArgument());
}

TEST(FleetTopology, ValidateRejectsDuplicateReplicaWithinAGroup) {
  FleetTopology topology;
  topology.groups = {{{"127.0.0.1", 7001}, {"127.0.0.1", 7001}}};
  EXPECT_TRUE(topology.Validate().IsInvalidArgument());
}

TEST(FleetTopology, ValidateRejectsEmptyHostAndPortZero) {
  FleetTopology no_host;
  no_host.groups = {{{"", 7001}}};
  EXPECT_TRUE(no_host.Validate().IsInvalidArgument());

  FleetTopology no_port;
  no_port.groups = {{{"127.0.0.1", 0}}};
  EXPECT_TRUE(no_port.Validate().IsInvalidArgument());
}

TEST(RouterOptionsValidate, RejectsNonPositiveTimeoutsAndBadPayloadCap) {
  RouterOptions ok;
  EXPECT_TRUE(ok.Validate().ok());

  RouterOptions bad_connect;
  bad_connect.connect_timeout_seconds = 0.0;
  EXPECT_TRUE(bad_connect.Validate().IsInvalidArgument());

  RouterOptions bad_deadline;
  bad_deadline.default_deadline_seconds = -1.0;
  EXPECT_TRUE(bad_deadline.Validate().IsInvalidArgument());

  RouterOptions bad_payload;
  bad_payload.max_frame_payload = 0;
  EXPECT_TRUE(bad_payload.Validate().IsInvalidArgument());

  RouterOptions zero_subbatch;  // 0 = whole-group sub-batches: legal
  zero_subbatch.subbatch_queries = 0;
  EXPECT_TRUE(zero_subbatch.Validate().ok());
}

TEST(RouterConnect, RejectsInvalidTopology) {
  auto empty = ShardRouter::Connect(FleetTopology{});
  EXPECT_TRUE(empty.status().IsInvalidArgument());

  FleetTopology hollow_group;
  hollow_group.groups = {{{"127.0.0.1", 7001}}, {}};
  auto hollow = ShardRouter::Connect(std::move(hollow_group));
  EXPECT_TRUE(hollow.status().IsInvalidArgument());

  FleetTopology duplicated;
  duplicated.groups = {{{"127.0.0.1", 7001}}, {{"127.0.0.1", 7001}}};
  auto duplicate = ShardRouter::Connect(std::move(duplicated));
  EXPECT_TRUE(duplicate.status().IsInvalidArgument());
}

TEST(RouterConnect, RejectsInvalidOptions) {
  RouterOptions options;
  options.default_deadline_seconds = 0.0;
  auto router = ShardRouter::Connect(
      FleetTopology::SingleReplica({{"127.0.0.1", 7001}}), options);
  EXPECT_TRUE(router.status().IsInvalidArgument());
}

TEST(RouterConnect, DeprecatedFlatShimBuildsSingleReplicaTopology) {
  // The shim exists for one PR so downstream call sites migrate
  // gracefully; it must route exactly like the explicit factory form.
  auto model = MakeModel();
  auto shard = ShardServer::Start(model, /*loader=*/nullptr);
  ASSERT_TRUE(shard.ok()) << shard.status().ToString();

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  auto router = ShardRouter::Connect(
      std::vector<ShardAddress>{{"127.0.0.1", (*shard)->port()}});
#pragma GCC diagnostic pop
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  EXPECT_EQ((*router)->num_groups(), 1u);
  EXPECT_EQ((*router)->num_replicas(), 1u);
  EXPECT_EQ((*router)->topology().groups[0][0].port, (*shard)->port());
  auto health = (*router)->Health({0, 0});
  EXPECT_TRUE(health.ok()) << health.status().ToString();
}

TEST(RouterControlPlane, OutOfRangeReplicaRefIsInvalidArgument) {
  auto model = MakeModel();
  auto shard = ShardServer::Start(model, /*loader=*/nullptr);
  ASSERT_TRUE(shard.ok()) << shard.status().ToString();
  auto router = ShardRouter::Connect(
      FleetTopology::SingleReplica({{"127.0.0.1", (*shard)->port()}}));
  ASSERT_TRUE(router.ok());

  EXPECT_TRUE((*router)->Health({1, 0}).status().IsInvalidArgument());
  EXPECT_TRUE((*router)->Health({0, 1}).status().IsInvalidArgument());
  EXPECT_TRUE(
      (*router)->SwapModel({7, 0}, "x").status().IsInvalidArgument());
}

TEST(DeadlineType, DefaultDefersAndAfterFixesAnAbsolutePoint) {
  const Deadline deferred;
  EXPECT_TRUE(deferred.is_default());
  EXPECT_TRUE(Deadline::Default().is_default());
  EXPECT_EQ(deferred, Deadline::Default());
  EXPECT_FALSE(deferred.expired());  // "default" is never "expired"

  const Deadline soon = Deadline::After(60.0);
  EXPECT_FALSE(soon.is_default());
  EXPECT_FALSE(soon.expired());
  EXPECT_GT(soon.RemainingSeconds(), 59.0);
  EXPECT_LE(soon.RemainingSeconds(), 60.0);

  // After(0) means "already expired", not "no deadline" — the exact
  // footgun the old 0-means-default convention had.
  EXPECT_FALSE(Deadline::After(0.0).is_default());
  EXPECT_TRUE(Deadline::After(0.0).expired());
  EXPECT_TRUE(Deadline::After(-5.0).expired());  // clamps, still a deadline
}

TEST(DeadlineType, AfterIsFixedAtConstructionNotAtUse) {
  const Deadline d = Deadline::After(0.05);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_TRUE(d.expired()) << "After() must not re-anchor at use time";
}

TEST(DeadlineType, AtCarriesTheExactPoint) {
  const auto when =
      Deadline::Clock::now() + std::chrono::milliseconds(1500);
  const Deadline d = Deadline::At(when);
  EXPECT_FALSE(d.is_default());
  EXPECT_EQ(d.when(), when);
  EXPECT_EQ(d.ResolveOr(99.0), when);  // explicit beats the default
}

TEST(DeadlineType, ResolveOrAnchorsTheDefaultAtCallTime) {
  const Deadline deferred;
  const auto now = Deadline::Clock::now();
  const auto resolved = deferred.ResolveOr(5.0);
  const double seconds =
      std::chrono::duration<double>(resolved - now).count();
  EXPECT_GT(seconds, 4.5);
  EXPECT_LT(seconds, 5.5);
}

}  // namespace
}  // namespace kqr
