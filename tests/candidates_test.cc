#include "core/candidates.h"

#include <gtest/gtest.h>

namespace kqr {
namespace {

SimilarityIndex MakeIndex() {
  SimilarityIndex index;
  index.Insert(0, {SimilarTerm{10, 0.9}, SimilarTerm{11, 0.5},
                   SimilarTerm{12, 0.3}});
  index.Insert(1, {SimilarTerm{20, 0.7}});
  index.Insert(2, {});
  return index;
}

TEST(Candidates, OriginalStateFirstWithTopScore) {
  SimilarityIndex index = MakeIndex();
  CandidateBuilder builder(index);
  auto states = builder.BuildFor(0);
  ASSERT_FALSE(states.empty());
  EXPECT_TRUE(states[0].is_original);
  EXPECT_EQ(states[0].term, 0u);
  EXPECT_DOUBLE_EQ(states[0].similarity, 0.9);
}

TEST(Candidates, SimilarTermsFollowInOrder) {
  SimilarityIndex index = MakeIndex();
  CandidateBuilder builder(index);
  auto states = builder.BuildFor(0);
  ASSERT_EQ(states.size(), 4u);  // original + 3 similar
  EXPECT_EQ(states[1].term, 10u);
  EXPECT_EQ(states[2].term, 11u);
  EXPECT_EQ(states[3].term, 12u);
  EXPECT_FALSE(states[1].is_original);
}

TEST(Candidates, PerTermTruncates) {
  CandidateOptions options;
  options.per_term = 2;
  SimilarityIndex index = MakeIndex();
  CandidateBuilder builder(index, options);
  auto states = builder.BuildFor(0);
  EXPECT_EQ(states.size(), 3u);  // original + 2
}

TEST(Candidates, NoOriginalWhenDisabled) {
  CandidateOptions options;
  options.include_original = false;
  SimilarityIndex index = MakeIndex();
  CandidateBuilder builder(index, options);
  auto states = builder.BuildFor(0);
  ASSERT_EQ(states.size(), 3u);
  for (const auto& s : states) EXPECT_FALSE(s.is_original);
}

TEST(Candidates, VoidStateAppendedWhenEnabled) {
  CandidateOptions options;
  options.include_void = true;
  SimilarityIndex index = MakeIndex();
  CandidateBuilder builder(index, options);
  auto states = builder.BuildFor(0);
  ASSERT_EQ(states.size(), 5u);
  const CandidateState& v = states.back();
  EXPECT_TRUE(v.is_void);
  EXPECT_EQ(v.term, kInvalidTermId);
  EXPECT_GT(v.similarity, 0.0);
  EXPECT_LT(v.similarity, states[0].similarity);
}

TEST(Candidates, EmptyListStillYieldsOriginal) {
  SimilarityIndex index = MakeIndex();
  CandidateBuilder builder(index);
  auto states = builder.BuildFor(2);
  ASSERT_EQ(states.size(), 1u);
  EXPECT_TRUE(states[0].is_original);
  EXPECT_DOUBLE_EQ(states[0].similarity, 1.0);
}

TEST(Candidates, UnknownTermYieldsOriginalOnly) {
  SimilarityIndex index = MakeIndex();
  CandidateBuilder builder(index);
  auto states = builder.BuildFor(999);
  ASSERT_EQ(states.size(), 1u);
  EXPECT_TRUE(states[0].is_original);
}

TEST(Candidates, OriginalInSimilarListNotDuplicated) {
  SimilarityIndex index;
  index.Insert(5, {SimilarTerm{5, 1.0}, SimilarTerm{6, 0.4}});
  CandidateBuilder builder(index);
  auto states = builder.BuildFor(5);
  size_t count_5 = 0;
  for (const auto& s : states) {
    if (s.term == 5) ++count_5;
  }
  EXPECT_EQ(count_5, 1u);
}

TEST(Candidates, SelfTermDoesNotConsumePerTermBudget) {
  // Regression: skipping the query term inside its own similar list used
  // to burn one of the per_term slots, under-filling the candidate set by
  // one state whenever the walk ranked the term among its own neighbors.
  SimilarityIndex index;
  index.Insert(5, {SimilarTerm{5, 1.0}, SimilarTerm{6, 0.4},
                   SimilarTerm{7, 0.3}, SimilarTerm{8, 0.2}});
  CandidateOptions options;
  options.per_term = 2;
  CandidateBuilder builder(index, options);
  auto states = builder.BuildFor(5);
  ASSERT_EQ(states.size(), 3u);  // original + exactly per_term similars
  EXPECT_TRUE(states[0].is_original);
  EXPECT_EQ(states[1].term, 6u);
  EXPECT_EQ(states[2].term, 7u);
}

TEST(Candidates, SelfTermMidListStillFillsBudget) {
  // Same regression with the self entry in the middle of the list and a
  // budget equal to the number of non-self entries: every non-self term
  // must make it in.
  SimilarityIndex index;
  index.Insert(9, {SimilarTerm{30, 0.9}, SimilarTerm{9, 0.8},
                   SimilarTerm{31, 0.7}, SimilarTerm{32, 0.6}});
  CandidateOptions options;
  options.per_term = 3;
  CandidateBuilder builder(index, options);
  auto states = builder.BuildFor(9);
  ASSERT_EQ(states.size(), 4u);  // original + all 3 non-self similars
  EXPECT_EQ(states[1].term, 30u);
  EXPECT_EQ(states[2].term, 31u);
  EXPECT_EQ(states[3].term, 32u);
  size_t count_self = 0;
  for (const auto& s : states) {
    if (s.term == 9) ++count_self;
  }
  EXPECT_EQ(count_self, 1u);
}

TEST(Candidates, BuildForWholeQuery) {
  SimilarityIndex index = MakeIndex();
  CandidateBuilder builder(index);
  auto all = builder.Build({0, 1});
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].size(), 4u);
  EXPECT_EQ(all[1].size(), 2u);
}

}  // namespace
}  // namespace kqr
