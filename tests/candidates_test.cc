#include "core/candidates.h"

#include <gtest/gtest.h>

namespace kqr {
namespace {

SimilarityIndex MakeIndex() {
  SimilarityIndex index;
  index.Insert(0, {SimilarTerm{10, 0.9}, SimilarTerm{11, 0.5},
                   SimilarTerm{12, 0.3}});
  index.Insert(1, {SimilarTerm{20, 0.7}});
  index.Insert(2, {});
  return index;
}

TEST(Candidates, OriginalStateFirstWithTopScore) {
  SimilarityIndex index = MakeIndex();
  CandidateBuilder builder(index);
  auto states = builder.BuildFor(0);
  ASSERT_FALSE(states.empty());
  EXPECT_TRUE(states[0].is_original);
  EXPECT_EQ(states[0].term, 0u);
  EXPECT_DOUBLE_EQ(states[0].similarity, 0.9);
}

TEST(Candidates, SimilarTermsFollowInOrder) {
  SimilarityIndex index = MakeIndex();
  CandidateBuilder builder(index);
  auto states = builder.BuildFor(0);
  ASSERT_EQ(states.size(), 4u);  // original + 3 similar
  EXPECT_EQ(states[1].term, 10u);
  EXPECT_EQ(states[2].term, 11u);
  EXPECT_EQ(states[3].term, 12u);
  EXPECT_FALSE(states[1].is_original);
}

TEST(Candidates, PerTermTruncates) {
  CandidateOptions options;
  options.per_term = 2;
  SimilarityIndex index = MakeIndex();
  CandidateBuilder builder(index, options);
  auto states = builder.BuildFor(0);
  EXPECT_EQ(states.size(), 3u);  // original + 2
}

TEST(Candidates, NoOriginalWhenDisabled) {
  CandidateOptions options;
  options.include_original = false;
  SimilarityIndex index = MakeIndex();
  CandidateBuilder builder(index, options);
  auto states = builder.BuildFor(0);
  ASSERT_EQ(states.size(), 3u);
  for (const auto& s : states) EXPECT_FALSE(s.is_original);
}

TEST(Candidates, VoidStateAppendedWhenEnabled) {
  CandidateOptions options;
  options.include_void = true;
  SimilarityIndex index = MakeIndex();
  CandidateBuilder builder(index, options);
  auto states = builder.BuildFor(0);
  ASSERT_EQ(states.size(), 5u);
  const CandidateState& v = states.back();
  EXPECT_TRUE(v.is_void);
  EXPECT_EQ(v.term, kInvalidTermId);
  EXPECT_GT(v.similarity, 0.0);
  EXPECT_LT(v.similarity, states[0].similarity);
}

TEST(Candidates, EmptyListStillYieldsOriginal) {
  SimilarityIndex index = MakeIndex();
  CandidateBuilder builder(index);
  auto states = builder.BuildFor(2);
  ASSERT_EQ(states.size(), 1u);
  EXPECT_TRUE(states[0].is_original);
  EXPECT_DOUBLE_EQ(states[0].similarity, 1.0);
}

TEST(Candidates, UnknownTermYieldsOriginalOnly) {
  SimilarityIndex index = MakeIndex();
  CandidateBuilder builder(index);
  auto states = builder.BuildFor(999);
  ASSERT_EQ(states.size(), 1u);
  EXPECT_TRUE(states[0].is_original);
}

TEST(Candidates, OriginalInSimilarListNotDuplicated) {
  SimilarityIndex index;
  index.Insert(5, {SimilarTerm{5, 1.0}, SimilarTerm{6, 0.4}});
  CandidateBuilder builder(index);
  auto states = builder.BuildFor(5);
  size_t count_5 = 0;
  for (const auto& s : states) {
    if (s.term == 5) ++count_5;
  }
  EXPECT_EQ(count_5, 1u);
}

TEST(Candidates, BuildForWholeQuery) {
  SimilarityIndex index = MakeIndex();
  CandidateBuilder builder(index);
  auto all = builder.Build({0, 1});
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].size(), 4u);
  EXPECT_EQ(all[1].size(), 2u);
}

}  // namespace
}  // namespace kqr
