#include "audit/model_auditor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "core/engine_builder.h"
#include "core/serving_model.h"
#include "test_fixtures.h"

namespace kqr {
namespace {

std::shared_ptr<const ServingModel> MakeModel(bool precompute = false) {
  EngineOptions options;
  options.precompute_offline = precompute;
  auto model =
      EngineBuilder(options).Build(testing_fixtures::MakeMicroDblp());
  KQR_CHECK(model.ok());
  return std::move(model).ValueOrDie();
}

/// Copies a CsrGraph's raw parts into mutable vectors so a test can
/// corrupt exactly one invariant and reassemble with FromParts.
struct RawParts {
  std::vector<uint64_t> offsets;
  std::vector<Arc> arcs;
  std::vector<double> degrees;

  explicit RawParts(const CsrGraph& g)
      : offsets(g.offsets().begin(), g.offsets().end()),
        arcs(g.arcs().begin(), g.arcs().end()),
        degrees(g.weighted_degrees().begin(), g.weighted_degrees().end()) {}

  CsrGraph Assemble() {
    return CsrGraph::FromParts(offsets, arcs, degrees);
  }
};

CsrGraph MakeCleanGraph() {
  return CsrGraph::FromUndirectedEdges(
      5, {{0, 1, 1.0f}, {1, 2, 2.0f}, {2, 3, 0.5f}, {0, 3, 1.0f},
          {3, 4, 1.5f}, {0, 4, 0.25f}});
}

// ---------------------------------------------------------------------
// Clean structures pass.

TEST(ModelAuditor, CleanGraphPassesStructureChecks) {
  const CsrGraph g = MakeCleanGraph();
  ModelAuditor auditor;
  const AuditCheck adjacency = auditor.CheckAdjacency(g);
  EXPECT_TRUE(adjacency.passed) << adjacency.ToString();
  EXPECT_EQ(adjacency.checked, g.num_nodes());
  const AuditCheck mass = auditor.CheckWalkRows(g);
  EXPECT_TRUE(mass.passed) << mass.ToString();
}

TEST(ModelAuditor, CleanLazyModelPassesFullAudit) {
  auto model = MakeModel();
  const AuditReport report = ModelAuditor().Audit(*model);
  EXPECT_TRUE(report.ok()) << report.ToString();
  // Every advertised check ran.
  for (const char* name :
       {"csr-adjacency", "walk-row-mass", "preference-mass",
        "vocab-node-mapping", "similarity-lists", "closeness-lists",
        "hmm-stochastic"}) {
    const AuditCheck* check = report.Find(name);
    ASSERT_NE(check, nullptr) << "missing check " << name;
    EXPECT_TRUE(check->passed) << check->ToString();
    EXPECT_GT(check->checked, 0u) << name << " checked nothing";
  }
  EXPECT_EQ(report.total_violations(), 0u);
  EXPECT_NE(report.Summary().find("audit OK"), std::string::npos);
}

TEST(ModelAuditor, CleanEagerModelPassesFullAudit) {
  auto model = MakeModel(/*precompute=*/true);
  ASSERT_TRUE(model->fully_prepared());
  const AuditReport report = ModelAuditor().Audit(*model);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// ---------------------------------------------------------------------
// Seeded corruption: each invariant class, checked by exactly its check.

TEST(ModelAuditor, DetectsDenormalizedWalkRow) {
  RawParts parts(MakeCleanGraph());
  Rng rng(1001);
  const size_t victim = rng.NextBounded(parts.degrees.size());
  parts.degrees[victim] *= 2.0;  // row weights no longer sum to the degree
  const CsrGraph g = parts.Assemble();

  ModelAuditor auditor;
  const AuditCheck mass = auditor.CheckWalkRows(g);
  EXPECT_FALSE(mass.passed);
  EXPECT_GT(mass.violations, 0u);
  EXPECT_NE(mass.worst.find("transition row mass"), std::string::npos)
      << mass.ToString();
  // The adjacency itself is untouched and must still pass.
  EXPECT_TRUE(auditor.CheckAdjacency(g).passed);
}

TEST(ModelAuditor, WalkRowWorstOffenderIsLargestError) {
  RawParts parts(MakeCleanGraph());
  parts.degrees[0] *= 1.5;  // mass 0.666…
  parts.degrees[2] *= 8.0;  // mass 0.125 — worse
  const AuditCheck mass = ModelAuditor().CheckWalkRows(parts.Assemble());
  ASSERT_FALSE(mass.passed);
  EXPECT_EQ(mass.violations, 2u);
  EXPECT_NE(mass.worst.find("node 2"), std::string::npos)
      << mass.ToString();
}

TEST(ModelAuditor, DetectsOutOfBoundsCsrEdge) {
  RawParts parts(MakeCleanGraph());
  Rng rng(1002);
  const size_t victim = rng.NextBounded(parts.arcs.size());
  parts.arcs[victim].target =
      static_cast<uint32_t>(parts.offsets.size() + 40);
  const AuditCheck adjacency =
      ModelAuditor().CheckAdjacency(parts.Assemble());
  EXPECT_FALSE(adjacency.passed);
  EXPECT_NE(adjacency.worst.find("outside"), std::string::npos)
      << adjacency.ToString();
}

TEST(ModelAuditor, DetectsUnsortedAdjacencyRow) {
  RawParts parts(MakeCleanGraph());
  // Node 0 has three neighbors (1, 3, 4); swapping two breaks the strict
  // per-row ordering the binary-searched symmetry probe depends on.
  ASSERT_GE(parts.offsets[1] - parts.offsets[0], 2u);
  std::swap(parts.arcs[parts.offsets[0]], parts.arcs[parts.offsets[0] + 1]);
  const AuditCheck adjacency =
      ModelAuditor().CheckAdjacency(parts.Assemble());
  EXPECT_FALSE(adjacency.passed);
  EXPECT_NE(adjacency.worst.find("not strictly sorted"), std::string::npos)
      << adjacency.ToString();
}

TEST(ModelAuditor, DetectsAsymmetricArcWeight) {
  RawParts parts(MakeCleanGraph());
  parts.arcs[parts.offsets[0]].weight += 0.5f;  // forward ≠ reverse
  const AuditCheck adjacency =
      ModelAuditor().CheckAdjacency(parts.Assemble());
  EXPECT_FALSE(adjacency.passed);
  EXPECT_NE(adjacency.worst.find("mismatch"), std::string::npos)
      << adjacency.ToString();
}

TEST(ModelAuditor, DetectsBrokenCsrFraming) {
  RawParts parts(MakeCleanGraph());
  parts.offsets.back() += 3;  // frames arcs that do not exist
  const AuditCheck adjacency =
      ModelAuditor().CheckAdjacency(parts.Assemble());
  EXPECT_FALSE(adjacency.passed);
  // A broken frame must fail fast, not walk out of bounds.
  const AuditCheck mass = ModelAuditor().CheckWalkRows(parts.Assemble());
  EXPECT_FALSE(mass.passed);
}

TEST(ModelAuditor, DetectsNaNSimilarityScore) {
  SimilarityIndex index;
  index.Insert(0, {{1, 0.9},
                   {2, std::numeric_limits<double>::quiet_NaN()}});
  const AuditCheck check =
      ModelAuditor().CheckSimilarityLists(index, {0}, /*vocab_size=*/8,
                                          /*max_list_size=*/16);
  EXPECT_FALSE(check.passed);
  EXPECT_NE(check.worst.find("outside [0,1]"), std::string::npos)
      << check.ToString();
}

TEST(ModelAuditor, DetectsOutOfRangeSimilarityScore) {
  SimilarityIndex index;
  index.Insert(3, {{1, 1.5}});  // similarity is a probability
  const AuditCheck check =
      ModelAuditor().CheckSimilarityLists(index, {3}, 8, 16);
  EXPECT_FALSE(check.passed);
}

TEST(ModelAuditor, DetectsUnsortedTopKList) {
  SimilarityIndex index;
  index.Insert(0, {{1, 0.2}, {2, 0.8}});  // ascending — not a top-k list
  const AuditCheck check =
      ModelAuditor().CheckSimilarityLists(index, {0}, 8, 16);
  EXPECT_FALSE(check.passed);
  EXPECT_NE(check.worst.find("not sorted"), std::string::npos)
      << check.ToString();
}

TEST(ModelAuditor, DetectsDuplicateAndOutOfVocabEntries) {
  SimilarityIndex dup;
  dup.Insert(0, {{1, 0.5}, {1, 0.5}});
  EXPECT_FALSE(ModelAuditor().CheckSimilarityLists(dup, {0}, 8, 16).passed);

  SimilarityIndex oob;
  oob.Insert(0, {{99, 0.5}});
  EXPECT_FALSE(ModelAuditor().CheckSimilarityLists(oob, {0}, 8, 16).passed);
}

TEST(ModelAuditor, DetectsOversizeSimilarityList) {
  SimilarityIndex index;
  index.Insert(0, {{1, 0.9}, {2, 0.8}, {3, 0.7}});
  const AuditCheck check =
      ModelAuditor().CheckSimilarityLists(index, {0}, 8,
                                          /*max_list_size=*/2);
  EXPECT_FALSE(check.passed);
  EXPECT_NE(check.worst.find("cap"), std::string::npos);
}

TEST(ModelAuditor, DetectsBadClosenessEntries) {
  ClosenessIndex negative;
  negative.Insert(0, {{1, -0.5, 1}});
  EXPECT_FALSE(ModelAuditor()
                   .CheckClosenessLists(negative, {0}, 8, 16,
                                        /*check_order=*/false)
                   .passed);

  ClosenessIndex zero_dist;
  zero_dist.Insert(0, {{1, 0.5, 0}});
  EXPECT_FALSE(ModelAuditor()
                   .CheckClosenessLists(zero_dist, {0}, 8, 16, false)
                   .passed);

  ClosenessIndex unsorted;
  unsorted.Insert(0, {{1, 0.2, 1}, {2, 0.9, 1}});
  EXPECT_FALSE(ModelAuditor()
                   .CheckClosenessLists(unsorted, {0}, 8, 16,
                                        /*check_order=*/true)
                   .passed);
  // The same list is acceptable under normalized ranking, where raw
  // closeness need not be monotone.
  EXPECT_TRUE(ModelAuditor()
                  .CheckClosenessLists(unsorted, {0}, 8, 16,
                                       /*check_order=*/false)
                  .passed);
}

TEST(ModelAuditor, DetectsLeakyHmmRow) {
  HmmModel hmm;
  hmm.states.assign(2, std::vector<CandidateState>(2));
  hmm.pi = {0.5, 0.5};
  hmm.emission = {{0.25, 0.75}, {1.0, 0.0}};
  hmm.trans = {{{0.5, 0.5}, {0.9, 0.1}}};
  EXPECT_TRUE(ModelAuditor().CheckHmm(hmm).passed);

  HmmModel leaky = hmm;
  leaky.trans[0][1] = {0.9, 0.3};  // row sums to 1.2
  const AuditCheck check = ModelAuditor().CheckHmm(leaky);
  EXPECT_FALSE(check.passed);
  EXPECT_NE(check.worst.find("leaks mass"), std::string::npos)
      << check.ToString();

  HmmModel bad_pi = hmm;
  bad_pi.pi = {0.5, 0.4};
  EXPECT_FALSE(ModelAuditor().CheckHmm(bad_pi).passed);

  HmmModel ragged = hmm;
  ragged.emission[1] = {1.0};  // wrong row width
  EXPECT_FALSE(ModelAuditor().CheckHmm(ragged).passed);
}

// ---------------------------------------------------------------------
// Report plumbing and validators shared with the snapshot loader.

TEST(ModelAuditor, ReportFormatsFailuresUsefully) {
  RawParts parts(MakeCleanGraph());
  parts.degrees[1] = 123.0;
  const AuditCheck mass = ModelAuditor().CheckWalkRows(parts.Assemble());
  ASSERT_FALSE(mass.passed);
  const std::string text = mass.ToString();
  EXPECT_NE(text.find("walk-row-mass"), std::string::npos);
  EXPECT_NE(text.find("FAIL"), std::string::npos);
  EXPECT_NE(text.find("node 1"), std::string::npos);

  AuditReport report;
  report.checks.push_back(mass);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.Summary().find("walk-row-mass"), std::string::npos);
  EXPECT_NE(report.Find("walk-row-mass"), nullptr);
  EXPECT_EQ(report.Find("no-such-check"), nullptr);
}

TEST(ModelAuditor, ValidatorsRejectWhatTheLoaderMustNotImport) {
  auto sim = [](std::initializer_list<SimilarTerm> l) {
    return std::vector<SimilarTerm>(l);
  };
  auto clo = [](std::initializer_list<CloseTerm> l) {
    return std::vector<CloseTerm>(l);
  };
  EXPECT_TRUE(ValidateSimilarList(0, sim({{1, 0.9}, {2, 0.1}}), 8).ok());
  EXPECT_TRUE(ValidateSimilarList(0, sim({{1, -0.1}}), 8).IsCorruption());
  EXPECT_TRUE(ValidateSimilarList(0, sim({{9, 0.5}}), 8).IsCorruption());
  EXPECT_TRUE(ValidateCloseList(0, clo({{1, 2.5, 3}}), 8).ok());
  EXPECT_TRUE(ValidateCloseList(0, clo({{1, 2.5, 0}}), 8).IsCorruption());
  EXPECT_TRUE(
      ValidateCloseList(0, clo({{1, 1.0, 1}, {1, 1.0, 1}}), 8).IsCorruption());
}

// ---------------------------------------------------------------------
// Term-cache / lazy-preparation path: the audit covers exactly the terms
// the cache marks prepared, so corruption smuggled into that cache (e.g.
// through the snapshot-import path, which bypasses the extractors) must
// be caught the moment the term counts as prepared.

TEST(ModelAuditor, DetectsCorruptImportedTermRelations) {
  auto model = MakeModel();
  // Debug builds audit at Build() time, and the audit probe prepares a
  // few terms — pick a victim the lazy cache has not prepared yet.
  const std::vector<TermId> prepared = model->PreparedTerms();
  TermId victim = kInvalidTermId;
  for (TermId t = 0; t < model->vocab().size(); ++t) {
    if (std::find(prepared.begin(), prepared.end(), t) == prepared.end()) {
      victim = t;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidTermId) << "every term already prepared";
  const TermId other = (victim + 1) % model->vocab().size();

  // Import a NaN-scored similar list for the unprepared term; the import
  // marks it prepared without validating.
  model->ImportTermRelations(
      victim, {{other, std::numeric_limits<double>::quiet_NaN()}},
      {{other, 0.5, 1}});
  ASSERT_EQ(model->PreparedTerms().size(), prepared.size() + 1);

  const AuditReport report = ModelAuditor().Audit(*model);
  EXPECT_FALSE(report.ok());
  const AuditCheck* check = report.Find("similarity-lists");
  ASSERT_NE(check, nullptr);
  EXPECT_FALSE(check->passed) << check->ToString();
}

TEST(ModelAuditor, LazyPreparedTermsAuditCleanAndStayPinned) {
  auto model = MakeModel();
  auto terms = model->ResolveQuery("uncertain query");
  ASSERT_TRUE(terms.ok());
  for (TermId t : *terms) model->EnsureTerm(t);
  ASSERT_GE(model->PreparedTerms().size(), terms->size());
  EXPECT_TRUE(ModelAuditor().Audit(*model).ok());

  // A late import must not replace lists the cache already serves: the
  // garbage is dropped and the audit stays green.
  model->ImportTermRelations(
      (*terms)[0], {{(*terms)[1], std::numeric_limits<double>::infinity()}},
      {});
  const AuditReport report = ModelAuditor().Audit(*model);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(ModelAuditor, BuilderDebugAuditAcceptsCleanModels) {
  // In debug builds EngineBuilder::Build runs the auditor on every model;
  // a clean fixture must keep building (in release this is a no-op).
  EngineOptions options;
  options.debug_audit = true;
  auto model =
      EngineBuilder(options).Build(testing_fixtures::MakeMicroDblp());
  EXPECT_TRUE(model.ok()) << model.status().ToString();

  options.debug_audit = false;
  auto opted_out =
      EngineBuilder(options).Build(testing_fixtures::MakeMicroDblp());
  EXPECT_TRUE(opted_out.ok());
}

}  // namespace
}  // namespace kqr
