#include "storage/value.h"

#include <gtest/gtest.h>

namespace kqr {
namespace {

TEST(Value, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v.ToString(), "");
}

TEST(Value, Int64RoundTrip) {
  Value v(int64_t{42});
  EXPECT_EQ(v.type(), ValueType::kInt64);
  EXPECT_EQ(v.AsInt64(), 42);
  EXPECT_EQ(v.ToString(), "42");
}

TEST(Value, DoubleRoundTrip) {
  Value v(2.5);
  EXPECT_EQ(v.type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(v.AsDouble(), 2.5);
}

TEST(Value, StringRoundTrip) {
  Value v(std::string("hello"));
  EXPECT_EQ(v.type(), ValueType::kString);
  EXPECT_EQ(v.AsString(), "hello");
  EXPECT_EQ(v.ToString(), "hello");
  Value w("char literal");
  EXPECT_EQ(w.AsString(), "char literal");
}

TEST(Value, CompareWithinTypes) {
  EXPECT_LT(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_LT(Value(1.0), Value(1.5));
  EXPECT_LT(Value("abc"), Value("abd"));
  EXPECT_EQ(Value(int64_t{3}), Value(int64_t{3}));
}

TEST(Value, IntAndDoubleCompareNumerically) {
  EXPECT_EQ(Value(int64_t{2}), Value(2.0));
  EXPECT_LT(Value(int64_t{2}), Value(2.5));
  EXPECT_LT(Value(1.5), Value(int64_t{2}));
}

TEST(Value, CrossTypeOrdering) {
  // null < numeric < string
  EXPECT_LT(Value::Null(), Value(int64_t{0}));
  EXPECT_LT(Value(int64_t{999}), Value("a"));
  EXPECT_LT(Value::Null(), Value(""));
}

TEST(Value, NullsCompareEqual) {
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(Value, HashConsistentWithEquality) {
  EXPECT_EQ(Value(int64_t{5}).Hash(), Value(5.0).Hash());
  EXPECT_EQ(Value("x").Hash(), Value("x").Hash());
  EXPECT_EQ(Value::Null().Hash(), Value::Null().Hash());
}

TEST(Value, TypeNames) {
  EXPECT_STREQ(ValueTypeName(ValueType::kNull), "null");
  EXPECT_STREQ(ValueTypeName(ValueType::kInt64), "int64");
  EXPECT_STREQ(ValueTypeName(ValueType::kDouble), "double");
  EXPECT_STREQ(ValueTypeName(ValueType::kString), "string");
}

}  // namespace
}  // namespace kqr
