#include "closeness/path_search.h"

#include <gtest/gtest.h>

#include "graph/tat_builder.h"
#include "test_fixtures.h"

namespace kqr {
namespace {

using testing_fixtures::MicroCorpus;

class PathSearchTest : public ::testing::Test {
 protected:
  PathSearchTest() : corpus_(MicroCorpus::Make()) {
    auto graph =
        BuildTatGraph(corpus_.db, corpus_.vocab, corpus_.index,
                      TatBuilderOptions{.max_doc_frequency_fraction = 1.0});
    KQR_CHECK(graph.ok());
    graph_ = std::make_unique<TatGraph>(std::move(*graph));
  }

  const ReachedNode* Find(const std::vector<ReachedNode>& reached,
                          NodeId node) {
    for (const ReachedNode& r : reached) {
      if (r.node == node) return &r;
    }
    return nullptr;
  }

  MicroCorpus corpus_;
  std::unique_ptr<TatGraph> graph_;
};

TEST_F(PathSearchTest, DirectNeighborsAtDistanceOne) {
  NodeId start = graph_->NodeOfTerm(corpus_.Title("uncertain"));
  auto reached = SearchPaths(*graph_, start);
  NodeId p0 = graph_->NodeOfTuple({2, 0});
  const ReachedNode* r = Find(reached, p0);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->shortest, 1u);
}

TEST_F(PathSearchTest, StartNeverReported) {
  NodeId start = graph_->NodeOfTerm(corpus_.Title("uncertain"));
  auto reached = SearchPaths(*graph_, start);
  EXPECT_EQ(Find(reached, start), nullptr);
}

TEST_F(PathSearchTest, SameTitleTermsAtDistanceTwo) {
  NodeId start = graph_->NodeOfTerm(corpus_.Title("uncertain"));
  auto reached = SearchPaths(*graph_, start);
  NodeId query = graph_->NodeOfTerm(corpus_.Title("query"));
  const ReachedNode* r = Find(reached, query);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->shortest, 2u);
  EXPECT_GT(r->closeness, 0.0);
}

TEST_F(PathSearchTest, CrossPaperTermsAtDistanceFour) {
  // "uncertain" (p0,p3) and "probabilistic" (p1) connect via the shared
  // "query" term or venue v0: shortest path length 4.
  NodeId start = graph_->NodeOfTerm(corpus_.Title("uncertain"));
  auto reached = SearchPaths(*graph_, start);
  NodeId prob = graph_->NodeOfTerm(corpus_.Title("probabilistic"));
  const ReachedNode* r = Find(reached, prob);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->shortest, 4u);
}

TEST_F(PathSearchTest, MaxLengthBoundsReach) {
  NodeId start = graph_->NodeOfTerm(corpus_.Title("uncertain"));
  PathSearchOptions options;
  options.max_length = 1;
  auto reached = SearchPaths(*graph_, start, options);
  for (const ReachedNode& r : reached) {
    EXPECT_EQ(r.shortest, 1u);
    EXPECT_EQ(graph_->KindOf(r.node), NodeKind::kTuple);
  }
}

TEST_F(PathSearchTest, ClosenessAccumulatesAcrossLengths) {
  // More/shorter paths ⇒ larger closeness. "query" (2 shared-tuple paths
  // to uncertain at len 2... actually one per shared paper) vs
  // "probabilistic" (len-4 paths only).
  NodeId start = graph_->NodeOfTerm(corpus_.Title("uncertain"));
  auto reached = SearchPaths(*graph_, start);
  const ReachedNode* query =
      Find(reached, graph_->NodeOfTerm(corpus_.Title("query")));
  const ReachedNode* prob =
      Find(reached, graph_->NodeOfTerm(corpus_.Title("probabilistic")));
  ASSERT_NE(query, nullptr);
  ASSERT_NE(prob, nullptr);
  EXPECT_GT(query->closeness, prob->closeness);
}

TEST_F(PathSearchTest, ResultsSortedByCloseness) {
  NodeId start = graph_->NodeOfTerm(corpus_.Title("query"));
  auto reached = SearchPaths(*graph_, start);
  for (size_t i = 1; i < reached.size(); ++i) {
    EXPECT_GE(reached[i - 1].closeness, reached[i].closeness);
  }
}

TEST_F(PathSearchTest, BeamPruningLimitsFrontier) {
  NodeId start = graph_->NodeOfTerm(corpus_.Title("uncertain"));
  PathSearchOptions tight;
  tight.beam_width = 2;
  auto pruned = SearchPaths(*graph_, start, tight);
  PathSearchOptions loose;
  loose.beam_width = 0;
  auto full = SearchPaths(*graph_, start, loose);
  EXPECT_LE(pruned.size(), full.size());
  EXPECT_FALSE(full.empty());
}

TEST_F(PathSearchTest, WeightedCountsUseEdgeWeights) {
  NodeId start = graph_->NodeOfTerm(corpus_.Title("uncertain"));
  PathSearchOptions weighted;
  weighted.weighted = true;
  auto reached = SearchPaths(*graph_, start, weighted);
  EXPECT_FALSE(reached.empty());
}

TEST_F(PathSearchTest, ShortestDistanceBasics) {
  NodeId u = graph_->NodeOfTerm(corpus_.Title("uncertain"));
  NodeId q = graph_->NodeOfTerm(corpus_.Title("query"));
  NodeId p = graph_->NodeOfTerm(corpus_.Title("probabilistic"));
  EXPECT_EQ(ShortestDistance(*graph_, u, u, 8), 0);
  EXPECT_EQ(ShortestDistance(*graph_, u, q, 8), 2);
  EXPECT_EQ(ShortestDistance(*graph_, u, p, 8), 4);
  // Symmetric.
  EXPECT_EQ(ShortestDistance(*graph_, q, u, 8), 2);
}

TEST_F(PathSearchTest, ShortestDistanceRespectsCap) {
  NodeId u = graph_->NodeOfTerm(corpus_.Title("uncertain"));
  NodeId p = graph_->NodeOfTerm(corpus_.Title("probabilistic"));
  EXPECT_LT(ShortestDistance(*graph_, u, p, 3), 0);  // needs 4
}

TEST_F(PathSearchTest, UnreachableIsNegative) {
  TatBuilderOptions options;
  options.max_doc_frequency_fraction = 0.12;
  auto graph =
      BuildTatGraph(corpus_.db, corpus_.vocab, corpus_.index, options);
  ASSERT_TRUE(graph.ok());
  NodeId isolated = graph->NodeOfTerm(corpus_.Title("uncertain"));
  NodeId other = graph->NodeOfTerm(corpus_.Title("probabilistic"));
  EXPECT_LT(ShortestDistance(*graph, isolated, other, 8), 0);
  EXPECT_TRUE(SearchPaths(*graph, isolated).empty());
}

}  // namespace
}  // namespace kqr
