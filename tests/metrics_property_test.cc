// Property tests for the metrics primitives: histogram merge forms a
// commutative monoid (associative, commutative, identity), quantiles are
// monotone and hit the documented edge cases, interval deltas invert
// merges, and LatencyRecorder percentiles survive degenerate inputs.
// Randomized cases use the repo's seeded Rng, so every failure replays.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "common/latency.h"
#include "common/rng.h"
#include "obs/export.h"
#include "obs/metrics.h"

namespace kqr {
namespace {

/// Random histogram state over the default latency bounds: random bucket
/// counts with a consistent total and an arbitrary-but-plausible sum.
HistogramSnapshot RandomSnapshot(Rng* rng) {
  HistogramSnapshot s;
  s.bounds = DefaultLatencyBounds();
  s.counts.resize(s.bounds.size() + 1);
  for (uint64_t& c : s.counts) {
    c = rng->NextBounded(100);
    s.count += c;
  }
  s.sum = static_cast<double>(s.count) * rng->NextDouble();
  return s;
}

HistogramSnapshot Merged(const HistogramSnapshot& a,
                         const HistogramSnapshot& b) {
  HistogramSnapshot out = a;
  out.MergeFrom(b);
  return out;
}

void ExpectEqualSnapshots(const HistogramSnapshot& a,
                          const HistogramSnapshot& b) {
  ASSERT_EQ(a.bounds, b.bounds);
  ASSERT_EQ(a.counts, b.counts);
  EXPECT_EQ(a.count, b.count);
  // Bucket counts are integers and merge exactly; `sum` is a double, so
  // reassociating merges moves it by rounding only.
  EXPECT_NEAR(a.sum, b.sum, 1e-9 * std::max(1.0, std::abs(a.sum)));
}

TEST(HistogramMerge, Associative) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const HistogramSnapshot a = RandomSnapshot(&rng);
    const HistogramSnapshot b = RandomSnapshot(&rng);
    const HistogramSnapshot c = RandomSnapshot(&rng);
    ExpectEqualSnapshots(Merged(Merged(a, b), c), Merged(a, Merged(b, c)));
  }
}

TEST(HistogramMerge, Commutative) {
  Rng rng(12);
  for (int trial = 0; trial < 50; ++trial) {
    const HistogramSnapshot a = RandomSnapshot(&rng);
    const HistogramSnapshot b = RandomSnapshot(&rng);
    ExpectEqualSnapshots(Merged(a, b), Merged(b, a));
  }
}

TEST(HistogramMerge, EmptyIsIdentity) {
  Rng rng(13);
  HistogramSnapshot empty;
  empty.bounds = DefaultLatencyBounds();
  empty.counts.assign(empty.bounds.size() + 1, 0);
  for (int trial = 0; trial < 20; ++trial) {
    const HistogramSnapshot a = RandomSnapshot(&rng);
    ExpectEqualSnapshots(Merged(a, empty), a);
    ExpectEqualSnapshots(Merged(empty, a), a);
  }
}

TEST(HistogramMerge, DeltaInvertsMerge) {
  Rng rng(14);
  for (int trial = 0; trial < 50; ++trial) {
    const HistogramSnapshot before = RandomSnapshot(&rng);
    const HistogramSnapshot interval = RandomSnapshot(&rng);
    ExpectEqualSnapshots(HistogramDelta(Merged(before, interval), before),
                         interval);
  }
}

TEST(HistogramQuantile, MonotoneInQ) {
  Rng rng(15);
  for (int trial = 0; trial < 50; ++trial) {
    const HistogramSnapshot s = RandomSnapshot(&rng);
    double prev = -std::numeric_limits<double>::infinity();
    for (double q = 0.0; q <= 1.0; q += 0.01) {
      const double v = s.Quantile(q);
      EXPECT_GE(v, prev) << "quantile not monotone at q=" << q;
      prev = v;
    }
  }
}

TEST(HistogramQuantile, EdgeCases) {
  HistogramSnapshot empty;
  empty.bounds = DefaultLatencyBounds();
  empty.counts.assign(empty.bounds.size() + 1, 0);
  EXPECT_EQ(empty.Quantile(0.0), 0.0);
  EXPECT_EQ(empty.Quantile(0.5), 0.0);
  EXPECT_EQ(empty.Quantile(1.0), 0.0);
  EXPECT_EQ(empty.Mean(), 0.0);

  // A single observation lands every quantile in its bucket, including
  // out-of-range and NaN q (clamped).
  LatencyHistogram h;
  h.Observe(3e-4);
  const HistogramSnapshot one = h.Snapshot();
  ASSERT_EQ(one.count, 1u);
  const double only = one.Quantile(0.5);
  EXPECT_GE(only, 3e-4);  // bucket upper bound at or above the sample
  for (double q : {0.0, 1.0, -3.0, 7.0,
                   std::numeric_limits<double>::quiet_NaN()}) {
    EXPECT_EQ(one.Quantile(q), only) << "q=" << q;
  }

  // Overflow bucket: values past the last bound report the last finite
  // bound rather than infinity.
  LatencyHistogram over;
  over.Observe(1e9);
  const HistogramSnapshot o = over.Snapshot();
  EXPECT_EQ(o.Quantile(1.0), o.bounds.back());
}

TEST(HistogramQuantile, NearestRankAgainstExplicitCounts) {
  // 10 observations in the first bucket, 90 in the second: p<=10% must
  // report the first bound, anything above the second.
  HistogramSnapshot s;
  s.bounds = {1.0, 2.0, 4.0};
  s.counts = {10, 90, 0, 0};
  s.count = 100;
  s.sum = 150.0;
  EXPECT_EQ(s.Quantile(0.05), 1.0);
  EXPECT_EQ(s.Quantile(0.10), 1.0);
  EXPECT_EQ(s.Quantile(0.11), 2.0);
  EXPECT_EQ(s.Quantile(1.0), 2.0);
}

TEST(HistogramObserve, BucketsPartitionTheLine) {
  // Every observation lands in exactly one bucket and count/sum track.
  Rng rng(16);
  LatencyHistogram h;
  double expected_sum = 0.0;
  constexpr int kSamples = 1000;
  for (int i = 0; i < kSamples; ++i) {
    // Spread over ~9 decades, well past both bucket ends.
    const double v = std::pow(10.0, -7.0 + 9.0 * rng.NextDouble());
    h.Observe(v);
    expected_sum += v;
  }
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, static_cast<uint64_t>(kSamples));
  uint64_t bucket_total = 0;
  for (uint64_t c : s.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, s.count);
  EXPECT_NEAR(s.sum, expected_sum, 1e-9 * std::abs(expected_sum));
}

TEST(Counter, ShardsSumExactly) {
  Counter c;
  constexpr size_t kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c]() {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(Registry, GetIsIdempotentAndSnapshotSorted) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("kqr_b_total");
  EXPECT_EQ(a, registry.GetCounter("kqr_b_total"));
  registry.GetCounter("kqr_a_total")->Increment(5);
  registry.GetGauge("kqr_g")->Set(2.5);
  registry.GetHistogram("kqr_h")->Observe(1e-3);

  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "kqr_a_total");  // name-sorted
  EXPECT_EQ(snap.counters[0].value, 5u);
  EXPECT_EQ(snap.CounterValue("kqr_a_total"), 5u);
  EXPECT_EQ(snap.CounterValue("absent"), 0u);
  ASSERT_NE(snap.Histogram("kqr_h"), nullptr);
  EXPECT_EQ(snap.Histogram("kqr_h")->count, 1u);
  EXPECT_EQ(snap.Histogram("absent"), nullptr);
}

TEST(Export, FormattersCoverEveryMetric) {
  MetricsRegistry registry;
  registry.GetCounter("kqr_requests_total")->Increment(3);
  registry.GetGauge("kqr_build_stage_seconds{stage=\"tat-graph\"}")
      ->Set(0.25);
  registry.GetHistogram("kqr_request_seconds")->Observe(2e-3);
  const MetricsSnapshot snap = registry.Snapshot();

  const std::string json = MetricsToJson(snap);
  EXPECT_NE(json.find("\"kqr_requests_total\": 3"), std::string::npos);
  EXPECT_NE(json.find("kqr_build_stage_seconds{stage=\\\"tat-graph\\\"}"),
            std::string::npos)
      << "label quotes must be JSON-escaped";
  EXPECT_NE(json.find("\"kqr_request_seconds\""), std::string::npos);

  const std::string prom = MetricsToPrometheus(snap);
  EXPECT_NE(prom.find("# TYPE kqr_requests_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("kqr_build_stage_seconds{stage=\"tat-graph\"} 0.25"),
            std::string::npos);
  EXPECT_NE(prom.find("kqr_request_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("kqr_request_seconds_count 1"), std::string::npos);
}

TEST(LatencyRecorderPercentile, EmptyAndSingle) {
  LatencyRecorder empty;
  EXPECT_EQ(empty.Percentile(50.0), 0.0);
  EXPECT_EQ(empty.MeanSeconds(), 0.0);

  LatencyRecorder one;
  one.Add(0.125);
  for (double p : {0.0, 50.0, 100.0, -10.0, 400.0,
                   std::numeric_limits<double>::quiet_NaN()}) {
    EXPECT_EQ(one.Percentile(p), 0.125) << "p=" << p;
  }
}

TEST(LatencyRecorderPercentile, BoundsAndMonotonicity) {
  Rng rng(17);
  LatencyRecorder r;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.NextDouble();
    r.Add(v);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_EQ(r.Percentile(0.0), lo);
  EXPECT_EQ(r.Percentile(100.0), hi);
  EXPECT_EQ(r.Percentile(250.0), hi);   // clamped
  EXPECT_EQ(r.Percentile(-25.0), lo);   // clamped
  double prev = -std::numeric_limits<double>::infinity();
  for (double p = 0.0; p <= 100.0; p += 2.5) {
    const double v = r.Percentile(p);
    EXPECT_GE(v, prev) << "percentile not monotone at p=" << p;
    prev = v;
  }
}

TEST(LatencyRecorderPercentile, MergeMatchesPooledSamples) {
  Rng rng(18);
  LatencyRecorder a;
  LatencyRecorder b;
  LatencyRecorder pooled;
  for (int i = 0; i < 200; ++i) {
    const double v = rng.NextDouble();
    (i % 2 == 0 ? a : b).Add(v);
    pooled.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), pooled.count());
  EXPECT_DOUBLE_EQ(a.TotalSeconds(), pooled.TotalSeconds());
  for (double p : {0.0, 25.0, 50.0, 75.0, 95.0, 100.0}) {
    EXPECT_DOUBLE_EQ(a.Percentile(p), pooled.Percentile(p)) << "p=" << p;
  }
}

}  // namespace
}  // namespace kqr
